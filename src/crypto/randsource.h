// Pluggable randomness for commitment schemes.
//
// Commitment randomizers normally come from the OS CSPRNG, but two callers
// need a controlled stream instead:
//   * the deterministic replay tests, which assert that the parallel
//     ZK-EDB build is byte-identical to the sequential one — randomness
//     must then depend only on WHAT is drawn (which tree node), never on
//     thread scheduling;
//   * auditable re-derivation of a commitment from a stored seed.
//
// DrbgRandomSource is a SHA-256 counter-mode DRBG: deterministic, forkable
// by domain-separated seeds, and NOT suitable for production commitments
// unless the seed itself is high-entropy and secret.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "crypto/bignum.h"

namespace desword {

class RandomSource {
 public:
  virtual ~RandomSource() = default;

  /// Uniform value with exactly `bits` bits (top bit set), like
  /// Bignum::rand_bits.
  virtual Bignum rand_bits(int bits) = 0;

  /// Uniform value in [0, bound), bound > 0, like Bignum::rand_range.
  virtual Bignum rand_range(const Bignum& bound) = 0;
};

/// The process CSPRNG (delegates to Bignum's OpenSSL-backed draws).
/// Stateless and thread safe; `system_random()` returns a shared instance.
class SystemRandomSource final : public RandomSource {
 public:
  Bignum rand_bits(int bits) override;
  Bignum rand_range(const Bignum& bound) override;
};

RandomSource& system_random();

/// Deterministic SHA-256 counter-mode stream seeded by arbitrary bytes.
/// NOT thread safe — derive one instance per consumer.
class DrbgRandomSource final : public RandomSource {
 public:
  explicit DrbgRandomSource(BytesView seed);

  Bignum rand_bits(int bits) override;
  Bignum rand_range(const Bignum& bound) override;

  /// `n` deterministic bytes from the stream.
  Bytes bytes(std::size_t n);

 private:
  Bytes seed_;
  std::uint64_t counter_ = 0;
  Bytes buffer_;           // unconsumed tail of the last block
  std::size_t buffer_pos_ = 0;
};

}  // namespace desword
