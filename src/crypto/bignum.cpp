#include "crypto/bignum.h"

#include <openssl/err.h>

#include <utility>

#include "common/error.h"

namespace desword {

namespace {

/// Thread-local scratch context shared by all Bignum operations.
BN_CTX* ctx() {
  thread_local BN_CTX* c = BN_CTX_new();
  if (c == nullptr) throw CryptoError("BN_CTX_new failed");
  return c;
}

[[noreturn]] void fail(const char* op) {
  throw CryptoError(std::string(op) + " failed (openssl err " +
                    std::to_string(ERR_peek_last_error()) + ")");
}

}  // namespace

BIGNUM* Bignum::checked(BIGNUM* bn) {
  if (bn == nullptr) fail("BN alloc");
  return bn;
}

Bignum::Bignum() : bn_(checked(BN_new())) { BN_zero(bn_); }

Bignum::Bignum(std::uint64_t v) : bn_(checked(BN_new())) {
  if (BN_set_word(bn_, v) != 1) fail("BN_set_word");
}

Bignum::Bignum(const Bignum& other) : bn_(checked(BN_dup(other.bn_))) {}

Bignum::Bignum(Bignum&& other) noexcept : bn_(other.bn_) {
  other.bn_ = nullptr;
}

Bignum& Bignum::operator=(const Bignum& other) {
  if (this != &other) {
    if (BN_copy(bn_, other.bn_) == nullptr) fail("BN_copy");
  }
  return *this;
}

Bignum& Bignum::operator=(Bignum&& other) noexcept {
  std::swap(bn_, other.bn_);
  return *this;
}

Bignum::~Bignum() {
  if (bn_ != nullptr) BN_free(bn_);
}

Bignum Bignum::from_bytes(BytesView be) {
  BIGNUM* bn = BN_bin2bn(be.data(), static_cast<int>(be.size()), nullptr);
  if (bn == nullptr) fail("BN_bin2bn");
  return Bignum(bn);
}

Bignum Bignum::from_dec(std::string_view dec) {
  BIGNUM* bn = nullptr;
  const std::string s(dec);
  if (BN_dec2bn(&bn, s.c_str()) == 0) fail("BN_dec2bn");
  return Bignum(bn);
}

Bignum Bignum::from_hex(std::string_view hex) {
  BIGNUM* bn = nullptr;
  const std::string s(hex);
  if (BN_hex2bn(&bn, s.c_str()) == 0) fail("BN_hex2bn");
  return Bignum(bn);
}

Bytes Bignum::to_bytes() const {
  if (is_negative()) throw CryptoError("to_bytes on negative value");
  Bytes out(static_cast<std::size_t>(BN_num_bytes(bn_)));
  if (!out.empty()) BN_bn2bin(bn_, out.data());
  return out;
}

Bytes Bignum::to_bytes_padded(std::size_t len) const {
  if (is_negative()) throw CryptoError("to_bytes_padded on negative value");
  Bytes out(len);
  if (BN_bn2binpad(bn_, out.data(), static_cast<int>(len)) < 0) {
    fail("BN_bn2binpad (value too large for pad length)");
  }
  return out;
}

std::string Bignum::to_dec() const {
  char* s = BN_bn2dec(bn_);
  if (s == nullptr) fail("BN_bn2dec");
  std::string out(s);
  OPENSSL_free(s);
  return out;
}

std::string Bignum::to_hex() const {
  char* s = BN_bn2hex(bn_);
  if (s == nullptr) fail("BN_bn2hex");
  std::string out(s);
  OPENSSL_free(s);
  return out;
}

std::uint64_t Bignum::to_u64() const {
  if (is_negative() || bits() > 64) {
    throw CryptoError("to_u64: value out of range");
  }
  // BN_get_word returns unsigned long (64-bit on this platform).
  return static_cast<std::uint64_t>(BN_get_word(bn_));
}

int Bignum::bits() const { return BN_num_bits(bn_); }
bool Bignum::is_zero() const { return BN_is_zero(bn_); }
bool Bignum::is_one() const { return BN_is_one(bn_); }
bool Bignum::is_odd() const { return BN_is_odd(bn_); }
bool Bignum::is_negative() const { return BN_is_negative(bn_); }

Bignum Bignum::operator+(const Bignum& rhs) const {
  Bignum out;
  if (BN_add(out.bn_, bn_, rhs.bn_) != 1) fail("BN_add");
  return out;
}

Bignum Bignum::operator-(const Bignum& rhs) const {
  Bignum out;
  if (BN_sub(out.bn_, bn_, rhs.bn_) != 1) fail("BN_sub");
  return out;
}

Bignum Bignum::operator*(const Bignum& rhs) const {
  Bignum out;
  if (BN_mul(out.bn_, bn_, rhs.bn_, ctx()) != 1) fail("BN_mul");
  return out;
}

Bignum& Bignum::operator+=(const Bignum& rhs) {
  if (BN_add(bn_, bn_, rhs.bn_) != 1) fail("BN_add");
  return *this;
}

Bignum& Bignum::operator-=(const Bignum& rhs) {
  if (BN_sub(bn_, bn_, rhs.bn_) != 1) fail("BN_sub");
  return *this;
}

Bignum& Bignum::operator*=(const Bignum& rhs) {
  if (BN_mul(bn_, bn_, rhs.bn_, ctx()) != 1) fail("BN_mul");
  return *this;
}

Bignum Bignum::negated() const {
  Bignum out(*this);
  BN_set_negative(out.bn_, !is_negative() && !is_zero());
  return out;
}

Bignum Bignum::divided_by(const Bignum& d, Bignum* rem) const {
  if (d.is_zero()) throw CryptoError("division by zero");
  Bignum q;
  Bignum r;
  if (BN_div(q.bn_, r.bn_, bn_, d.bn_, ctx()) != 1) fail("BN_div");
  if (rem != nullptr) *rem = std::move(r);
  return q;
}

bool Bignum::divisible_by(const Bignum& d) const {
  Bignum r;
  divided_by(d, &r);
  return r.is_zero();
}

Bignum Bignum::mod(const Bignum& m) const {
  Bignum out;
  if (BN_nnmod(out.bn_, bn_, m.bn_, ctx()) != 1) fail("BN_nnmod");
  return out;
}

Bignum Bignum::mod_exp(const Bignum& base, const Bignum& exp,
                       const Bignum& m) {
  if (exp.is_negative()) throw CryptoError("mod_exp: negative exponent");
  Bignum out;
  // One-shot generic fallback for callers without a per-modulus context
  // (keygen-time derivations); hot paths use ModExpContext.
  if (BN_mod_exp(out.bn_, base.bn_, exp.bn_, m.bn_,  // desword-lint: allow(modexp)
                 ctx()) != 1) {
    fail("BN_mod_exp");
  }
  return out;
}

Bignum Bignum::mod_mul(const Bignum& a, const Bignum& b, const Bignum& m) {
  Bignum out;
  if (BN_mod_mul(out.bn_, a.bn_, b.bn_, m.bn_, ctx()) != 1) {
    fail("BN_mod_mul");
  }
  return out;
}

Bignum Bignum::mod_inverse(const Bignum& a, const Bignum& m) {
  Bignum out;
  if (BN_mod_inverse(out.bn_, a.bn_, m.bn_, ctx()) == nullptr) {
    throw CryptoError("mod_inverse: no inverse exists");
  }
  return out;
}

Bignum Bignum::gcd(const Bignum& a, const Bignum& b) {
  Bignum out;
  if (BN_gcd(out.bn_, a.bn_, b.bn_, ctx()) != 1) fail("BN_gcd");
  return out;
}

std::strong_ordering Bignum::operator<=>(const Bignum& rhs) const {
  const int c = BN_cmp(bn_, rhs.bn_);
  if (c < 0) return std::strong_ordering::less;
  if (c > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

bool Bignum::operator==(const Bignum& rhs) const {
  return BN_cmp(bn_, rhs.bn_) == 0;
}

Bignum Bignum::rand_range(const Bignum& bound) {
  if (bound.is_zero() || bound.is_negative()) {
    throw CryptoError("rand_range: bound must be > 0");
  }
  Bignum out;
  if (BN_rand_range(out.bn_, bound.bn_) != 1) fail("BN_rand_range");
  return out;
}

Bignum Bignum::rand_bits(int bits) {
  Bignum out;
  if (BN_rand(out.bn_, bits, BN_RAND_TOP_ONE, BN_RAND_BOTTOM_ANY) != 1) {
    fail("BN_rand");
  }
  return out;
}

bool Bignum::is_prime() const {
  const int r = BN_check_prime(bn_, ctx(), nullptr);
  if (r < 0) fail("BN_check_prime");
  return r == 1;
}

Bignum Bignum::generate_prime(int bits, bool safe) {
  Bignum out;
  if (BN_generate_prime_ex(out.bn_, bits, safe ? 1 : 0, nullptr, nullptr,
                           nullptr) != 1) {
    fail("BN_generate_prime_ex");
  }
  return out;
}

}  // namespace desword
