// Schnorr signatures over an abstract prime-order group.
//
// Used for two purposes:
//   * participant identity keys (authenticating protocol messages), and
//   * the signature-list POC baseline of the paper's §II-C strawman.
#pragma once

#include "common/bytes.h"
#include "crypto/bignum.h"
#include "crypto/group.h"

namespace desword {

struct SchnorrKeyPair {
  Bignum secret;  // scalar in [1, order)
  Bytes public_key;  // serialized group element g^secret
};

struct SchnorrSignature {
  Bignum challenge;  // e = H(R || pk || msg) mod order
  Bignum response;   // s = k + e * secret mod order

  Bytes serialize(const Group& group) const;
  static SchnorrSignature deserialize(const Group& group, BytesView data);
};

/// Generates a fresh key pair.
SchnorrKeyPair schnorr_keygen(const Group& group);

/// Signs `msg` with Fiat-Shamir over SHA-256.
SchnorrSignature schnorr_sign(const Group& group, const Bignum& secret,
                              BytesView msg);

/// Verifies a signature; returns false (never throws) on any mismatch or
/// malformed public key.
bool schnorr_verify(const Group& group, BytesView public_key, BytesView msg,
                    const SchnorrSignature& sig);

}  // namespace desword
