#include "crypto/hash.h"

#include <openssl/evp.h>

#include "common/error.h"
#include "common/serial.h"

namespace desword {

Bytes sha256(BytesView data) {
  Bytes out(kSha256Size);
  unsigned int len = 0;
  if (EVP_Digest(data.data(), data.size(), out.data(), &len, EVP_sha256(),
                 nullptr) != 1 ||
      len != kSha256Size) {
    throw CryptoError("EVP_Digest(sha256) failed");
  }
  return out;
}

Bytes hash_tagged(std::string_view tag,
                  std::initializer_list<BytesView> parts) {
  TaggedHasher h(tag);
  for (const auto& p : parts) h.add(p);
  return h.digest();
}

TaggedHasher::TaggedHasher(std::string_view tag) {
  EVP_MD_CTX* ctx = EVP_MD_CTX_new();
  if (ctx == nullptr || EVP_DigestInit_ex(ctx, EVP_sha256(), nullptr) != 1) {
    EVP_MD_CTX_free(ctx);
    throw CryptoError("EVP_DigestInit_ex failed");
  }
  md_ctx_ = ctx;
  // The tag itself is length-prefixed so "ab"+"c" != "a"+"bc".
  add_str(tag);
}

TaggedHasher& TaggedHasher::add(BytesView part) {
  auto* ctx = static_cast<EVP_MD_CTX*>(md_ctx_);
  BinaryWriter w;
  w.varint(part.size());
  const Bytes prefix = w.take();
  if (EVP_DigestUpdate(ctx, prefix.data(), prefix.size()) != 1 ||
      EVP_DigestUpdate(ctx, part.data(), part.size()) != 1) {
    throw CryptoError("EVP_DigestUpdate failed");
  }
  return *this;
}

TaggedHasher& TaggedHasher::add_str(std::string_view part) {
  return add(BytesView(reinterpret_cast<const std::uint8_t*>(part.data()),
                       part.size()));
}

TaggedHasher& TaggedHasher::add_u64(std::uint64_t v) {
  const Bytes b = be64(v);
  return add(b);
}

Bytes TaggedHasher::digest() {
  auto* ctx = static_cast<EVP_MD_CTX*>(md_ctx_);
  Bytes out(kSha256Size);
  unsigned int len = 0;
  const int rc = EVP_DigestFinal_ex(ctx, out.data(), &len);
  EVP_MD_CTX_free(ctx);
  md_ctx_ = nullptr;
  if (rc != 1 || len != kSha256Size) {
    throw CryptoError("EVP_DigestFinal_ex failed");
  }
  return out;
}

Bytes hash_to_128(std::string_view tag,
                  std::initializer_list<BytesView> parts) {
  Bytes full = hash_tagged(tag, parts);
  full.resize(16);
  return full;
}

}  // namespace desword
