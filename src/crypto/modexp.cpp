#include "crypto/modexp.h"

#include "common/error.h"
#include "obs/metrics.h"

namespace desword {

namespace {

/// Call counters for the two modexp paths (DESIGN.md §8). Function-local
/// statics would retake the registry lock-free scan per TU anyway; these
/// file-level references bind once at static-init time.
obs::Counter& modexp_calls() {
  static obs::Counter& c = obs::metric("crypto.modexp.calls");
  return c;
}

obs::Counter& fixed_base_hits() {
  static obs::Counter& c = obs::metric("crypto.modexp.fixed_base_hits");
  return c;
}

BN_CTX* scratch() {
  thread_local BN_CTX* c = BN_CTX_new();
  if (c == nullptr) throw CryptoError("BN_CTX_new failed");
  return c;
}

}  // namespace

ModExpContext::ModExpContext(const Bignum& modulus)
    : modulus_(modulus), mont_(BN_MONT_CTX_new()) {
  if (!modulus.is_odd() || modulus <= Bignum(1)) {
    BN_MONT_CTX_free(mont_);
    throw CryptoError("ModExpContext requires an odd modulus > 1");
  }
  if (mont_ == nullptr ||
      BN_MONT_CTX_set(mont_, modulus_.raw(), scratch()) != 1) {
    BN_MONT_CTX_free(mont_);
    throw CryptoError("BN_MONT_CTX_set failed");
  }
}

ModExpContext::~ModExpContext() { BN_MONT_CTX_free(mont_); }

Bignum ModExpContext::exp(const Bignum& base, const Bignum& exponent) const {
  if (exponent.is_negative()) {
    throw CryptoError("ModExpContext::exp: negative exponent");
  }
  modexp_calls().add();
  Bignum out;
  // Reduce the base first: BN_mod_exp_mont requires base < modulus.
  const Bignum reduced = base.mod(modulus_);
  if (BN_mod_exp_mont(out.raw(), reduced.raw(), exponent.raw(),
                      modulus_.raw(), scratch(), mont_) != 1) {
    throw CryptoError("BN_mod_exp_mont failed");
  }
  return out;
}

Bignum ModExpContext::exp_signed(const Bignum& base,
                                 const Bignum& exponent) const {
  if (!exponent.is_negative()) return exp(base, exponent);
  return Bignum::mod_inverse(exp(base, exponent.negated()), modulus_);
}

ModExpContext::FixedBaseTable ModExpContext::precompute(const Bignum& base,
                                                        int max_bits,
                                                        int window) const {
  if (max_bits <= 0) {
    throw CryptoError("ModExpContext::precompute: max_bits must be > 0");
  }
  if (window < 1 || window > 8) {
    throw CryptoError("ModExpContext::precompute: window out of [1, 8]");
  }
  FixedBaseTable t;
  t.base_ = base.mod(modulus_);
  t.window_ = window;
  t.max_bits_ = max_bits;
  t.row_ = (std::size_t{1} << window) - 1;
  const int blocks = (max_bits + window - 1) / window;
  t.table_.resize(static_cast<std::size_t>(blocks) * t.row_);

  BN_CTX* ctx = scratch();
  // cur = base^(2^{w·j}) in Montgomery form, advanced block by block.
  Bignum cur;
  if (BN_to_montgomery(cur.raw(), t.base_.raw(), mont_, ctx) != 1) {
    throw CryptoError("BN_to_montgomery failed");
  }
  for (int j = 0; j < blocks; ++j) {
    Bignum* row = &t.table_[static_cast<std::size_t>(j) * t.row_];
    row[0] = cur;
    for (std::size_t k = 2; k <= t.row_; ++k) {
      // row[k-1] = base^(k·2^{wj}) = row[k-2] · cur.
      if (BN_mod_mul_montgomery(row[k - 1].raw(), row[k - 2].raw(), cur.raw(),
                                mont_, ctx) != 1) {
        throw CryptoError("BN_mod_mul_montgomery failed");
      }
    }
    if (j + 1 < blocks) {
      for (int s = 0; s < window; ++s) {
        if (BN_mod_mul_montgomery(cur.raw(), cur.raw(), cur.raw(), mont_,
                                  ctx) != 1) {
          throw CryptoError("BN_mod_mul_montgomery failed");
        }
      }
    }
  }
  return t;
}

Bignum ModExpContext::exp(const FixedBaseTable& table,
                          const Bignum& exponent) const {
  if (exponent.is_negative()) {
    throw CryptoError("ModExpContext::exp: negative exponent");
  }
  if (exponent.bits() > table.max_bits_) {
    return exp(table.base_, exponent);  // oversized: plain path (counted there)
  }
  modexp_calls().add();
  fixed_base_hits().add();
  if (exponent.is_zero()) return Bignum(1);

  BN_CTX* ctx = scratch();
  const int window = table.window_;
  const int blocks = (exponent.bits() + window - 1) / window;
  Bignum acc;
  bool have_acc = false;
  for (int j = 0; j < blocks; ++j) {
    unsigned digit = 0;
    for (int b = 0; b < window; ++b) {
      if (BN_is_bit_set(exponent.raw(), j * window + b)) digit |= 1u << b;
    }
    if (digit == 0) continue;
    const Bignum& entry =
        table.table_[static_cast<std::size_t>(j) * table.row_ + (digit - 1)];
    if (!have_acc) {
      acc = entry;
      have_acc = true;
      continue;
    }
    if (BN_mod_mul_montgomery(acc.raw(), acc.raw(), entry.raw(), mont_,
                              ctx) != 1) {
      throw CryptoError("BN_mod_mul_montgomery failed");
    }
  }
  Bignum out;
  if (BN_from_montgomery(out.raw(), acc.raw(), mont_, ctx) != 1) {
    throw CryptoError("BN_from_montgomery failed");
  }
  return out;
}

Bignum ModExpContext::exp_signed(const FixedBaseTable& table,
                                 const Bignum& exponent) const {
  if (!exponent.is_negative()) return exp(table, exponent);
  return Bignum::mod_inverse(exp(table, exponent.negated()), modulus_);
}

}  // namespace desword
