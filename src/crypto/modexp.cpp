#include "crypto/modexp.h"

#include <algorithm>

#include "common/error.h"
#include "obs/metrics.h"

namespace desword {

namespace {

/// Call counters for the two modexp paths (DESIGN.md §8). Function-local
/// statics would retake the registry lock-free scan per TU anyway; these
/// file-level references bind once at static-init time.
obs::Counter& modexp_calls() {
  static obs::Counter& c = obs::metric("crypto.modexp.calls");
  return c;
}

obs::Counter& fixed_base_hits() {
  static obs::Counter& c = obs::metric("crypto.modexp.fixed_base_hits");
  return c;
}

obs::Counter& multi_exp_calls() {
  static obs::Counter& c = obs::metric("crypto.multi_exp.calls");
  return c;
}

BN_CTX* scratch() {
  thread_local BN_CTX* c = BN_CTX_new();
  if (c == nullptr) throw CryptoError("BN_CTX_new failed");
  return c;
}

}  // namespace

ModExpContext::ModExpContext(const Bignum& modulus)
    : modulus_(modulus), mont_(BN_MONT_CTX_new()) {
  if (!modulus.is_odd() || modulus <= Bignum(1)) {
    BN_MONT_CTX_free(mont_);
    throw CryptoError("ModExpContext requires an odd modulus > 1");
  }
  if (mont_ == nullptr ||
      BN_MONT_CTX_set(mont_, modulus_.raw(), scratch()) != 1) {
    BN_MONT_CTX_free(mont_);
    throw CryptoError("BN_MONT_CTX_set failed");
  }
}

ModExpContext::~ModExpContext() { BN_MONT_CTX_free(mont_); }

Bignum ModExpContext::exp(const Bignum& base, const Bignum& exponent) const {
  if (exponent.is_negative()) {
    throw CryptoError("ModExpContext::exp: negative exponent");
  }
  modexp_calls().add();
  Bignum out;
  // Reduce the base first: BN_mod_exp_mont requires base < modulus.
  const Bignum reduced = base.mod(modulus_);
  if (BN_mod_exp_mont(out.raw(), reduced.raw(), exponent.raw(),
                      modulus_.raw(), scratch(), mont_) != 1) {
    throw CryptoError("BN_mod_exp_mont failed");
  }
  return out;
}

Bignum ModExpContext::exp_signed(const Bignum& base,
                                 const Bignum& exponent) const {
  if (!exponent.is_negative()) return exp(base, exponent);
  return Bignum::mod_inverse(exp(base, exponent.negated()), modulus_);
}

ModExpContext::FixedBaseTable ModExpContext::precompute(const Bignum& base,
                                                        int max_bits,
                                                        int window) const {
  if (max_bits <= 0) {
    throw CryptoError("ModExpContext::precompute: max_bits must be > 0");
  }
  if (window < 1 || window > 8) {
    throw CryptoError("ModExpContext::precompute: window out of [1, 8]");
  }
  FixedBaseTable t;
  t.base_ = base.mod(modulus_);
  t.window_ = window;
  t.max_bits_ = max_bits;
  t.row_ = (std::size_t{1} << window) - 1;
  const int blocks = (max_bits + window - 1) / window;
  t.table_.resize(static_cast<std::size_t>(blocks) * t.row_);

  BN_CTX* ctx = scratch();
  // cur = base^(2^{w·j}) in Montgomery form, advanced block by block.
  Bignum cur;
  if (BN_to_montgomery(cur.raw(), t.base_.raw(), mont_, ctx) != 1) {
    throw CryptoError("BN_to_montgomery failed");
  }
  for (int j = 0; j < blocks; ++j) {
    Bignum* row = &t.table_[static_cast<std::size_t>(j) * t.row_];
    row[0] = cur;
    for (std::size_t k = 2; k <= t.row_; ++k) {
      // row[k-1] = base^(k·2^{wj}) = row[k-2] · cur.
      if (BN_mod_mul_montgomery(row[k - 1].raw(), row[k - 2].raw(), cur.raw(),
                                mont_, ctx) != 1) {
        throw CryptoError("BN_mod_mul_montgomery failed");
      }
    }
    if (j + 1 < blocks) {
      for (int s = 0; s < window; ++s) {
        if (BN_mod_mul_montgomery(cur.raw(), cur.raw(), cur.raw(), mont_,
                                  ctx) != 1) {
          throw CryptoError("BN_mod_mul_montgomery failed");
        }
      }
    }
  }
  return t;
}

Bignum ModExpContext::exp(const FixedBaseTable& table,
                          const Bignum& exponent) const {
  if (exponent.is_negative()) {
    throw CryptoError("ModExpContext::exp: negative exponent");
  }
  if (exponent.bits() > table.max_bits_) {
    return exp(table.base_, exponent);  // oversized: plain path (counted there)
  }
  modexp_calls().add();
  fixed_base_hits().add();
  if (exponent.is_zero()) return Bignum(1);

  BN_CTX* ctx = scratch();
  const int window = table.window_;
  const int blocks = (exponent.bits() + window - 1) / window;
  Bignum acc;
  bool have_acc = false;
  for (int j = 0; j < blocks; ++j) {
    unsigned digit = 0;
    for (int b = 0; b < window; ++b) {
      if (BN_is_bit_set(exponent.raw(), j * window + b)) digit |= 1u << b;
    }
    if (digit == 0) continue;
    const Bignum& entry =
        table.table_[static_cast<std::size_t>(j) * table.row_ + (digit - 1)];
    if (!have_acc) {
      acc = entry;
      have_acc = true;
      continue;
    }
    if (BN_mod_mul_montgomery(acc.raw(), acc.raw(), entry.raw(), mont_,
                              ctx) != 1) {
      throw CryptoError("BN_mod_mul_montgomery failed");
    }
  }
  Bignum out;
  if (BN_from_montgomery(out.raw(), acc.raw(), mont_, ctx) != 1) {
    throw CryptoError("BN_from_montgomery failed");
  }
  return out;
}

Bignum ModExpContext::exp_signed(const FixedBaseTable& table,
                                 const Bignum& exponent) const {
  if (!exponent.is_negative()) return exp(table, exponent);
  return Bignum::mod_inverse(exp(table, exponent.negated()), modulus_);
}

namespace {

/// Bits [w·j, w·j + w) of `e` as an unsigned digit.
unsigned window_digit(const BIGNUM* e, int j, int window) {
  unsigned digit = 0;
  for (int b = 0; b < window; ++b) {
    if (BN_is_bit_set(e, j * window + b)) digit |= 1u << b;
  }
  return digit;
}

/// Multiplication-count estimate for Straus at window w: per-base tables
/// (2^w − 1 entries each) + the shared squaring chain + one multiply per
/// non-zero digit (≈ L/w per base).
double straus_cost(std::size_t n, int bits, int w) {
  const double nd = static_cast<double>(n);
  return nd * static_cast<double>((1 << w) - 1) + bits + nd * bits / w;
}

/// Pippenger at window w: no per-base tables; every window pays one bucket
/// multiply per base plus ~2·(2^w − 1) multiplies for the suffix-product
/// collapse, on top of the shared squaring chain.
double pippenger_cost(std::size_t n, int bits, int w) {
  const double nd = static_cast<double>(n);
  const double blocks = static_cast<double>((bits + w - 1) / w);
  return nd + bits + blocks * (nd + 2.0 * static_cast<double>((1 << w) - 1));
}

}  // namespace

Bignum ModExpContext::multi_exp(const std::vector<ExpTerm>& terms) const {
  std::vector<const ExpTerm*> live;
  live.reserve(terms.size());
  int max_bits = 0;
  for (const ExpTerm& t : terms) {
    if (t.exponent.is_negative()) {
      throw CryptoError("ModExpContext::multi_exp: negative exponent");
    }
    if (t.exponent.is_zero()) continue;  // b^0 = 1
    max_bits = std::max(max_bits, t.exponent.bits());
    live.push_back(&t);
  }
  if (live.empty()) return Bignum(1);
  if (live.size() == 1) return exp(live[0]->base, live[0]->exponent);
  multi_exp_calls().add();

  // Pick the algorithm/window pair with the lowest estimated multiplication
  // count. Straus windows are capped at 8 (table memory is n·2^w residues);
  // Pippenger buckets at 12 (2^w residues, amortized over many bases).
  double best_cost = straus_cost(live.size(), max_bits, 1);
  bool use_pippenger = false;
  int best_w = 1;
  for (int w = 1; w <= 12; ++w) {
    if (w <= 8) {
      const double c = straus_cost(live.size(), max_bits, w);
      if (c < best_cost) {
        best_cost = c;
        best_w = w;
        use_pippenger = false;
      }
    }
    const double c = pippenger_cost(live.size(), max_bits, w);
    if (c < best_cost) {
      best_cost = c;
      best_w = w;
      use_pippenger = true;
    }
  }
  return use_pippenger ? multi_exp_pippenger(live, max_bits, best_w)
                       : multi_exp_straus(live, max_bits, best_w);
}

Bignum ModExpContext::multi_exp_straus(const std::vector<const ExpTerm*>& terms,
                                       int max_bits, int window) const {
  BN_CTX* ctx = scratch();
  const std::size_t row = (std::size_t{1} << window) - 1;
  // Per-base odd-and-even power tables: table[i][k-1] = base_i^k (Montgomery).
  std::vector<Bignum> table(terms.size() * row);
  for (std::size_t i = 0; i < terms.size(); ++i) {
    Bignum* t = &table[i * row];
    const Bignum reduced = terms[i]->base.mod(modulus_);
    if (BN_to_montgomery(t[0].raw(), reduced.raw(), mont_, ctx) != 1) {
      throw CryptoError("BN_to_montgomery failed");
    }
    for (std::size_t k = 2; k <= row; ++k) {
      if (BN_mod_mul_montgomery(t[k - 1].raw(), t[k - 2].raw(), t[0].raw(),
                                mont_, ctx) != 1) {
        throw CryptoError("BN_mod_mul_montgomery failed");
      }
    }
  }

  // One squaring chain over the widest exponent, all bases interleaved.
  const int blocks = (max_bits + window - 1) / window;
  Bignum acc;
  bool have_acc = false;
  for (int j = blocks - 1; j >= 0; --j) {
    if (have_acc) {
      for (int s = 0; s < window; ++s) {
        if (BN_mod_mul_montgomery(acc.raw(), acc.raw(), acc.raw(), mont_,
                                  ctx) != 1) {
          throw CryptoError("BN_mod_mul_montgomery failed");
        }
      }
    }
    for (std::size_t i = 0; i < terms.size(); ++i) {
      const unsigned digit = window_digit(terms[i]->exponent.raw(), j, window);
      if (digit == 0) continue;
      const Bignum& entry = table[i * row + (digit - 1)];
      if (!have_acc) {
        acc = entry;
        have_acc = true;
        continue;
      }
      if (BN_mod_mul_montgomery(acc.raw(), acc.raw(), entry.raw(), mont_,
                                ctx) != 1) {
        throw CryptoError("BN_mod_mul_montgomery failed");
      }
    }
  }
  if (!have_acc) return Bignum(1);  // unreachable: exponents are non-zero
  Bignum out;
  if (BN_from_montgomery(out.raw(), acc.raw(), mont_, ctx) != 1) {
    throw CryptoError("BN_from_montgomery failed");
  }
  return out;
}

Bignum ModExpContext::multi_exp_pippenger(
    const std::vector<const ExpTerm*>& terms, int max_bits, int window) const {
  BN_CTX* ctx = scratch();
  // Montgomery form of each base, converted once.
  std::vector<Bignum> bases(terms.size());
  for (std::size_t i = 0; i < terms.size(); ++i) {
    const Bignum reduced = terms[i]->base.mod(modulus_);
    if (BN_to_montgomery(bases[i].raw(), reduced.raw(), mont_, ctx) != 1) {
      throw CryptoError("BN_to_montgomery failed");
    }
  }

  const std::size_t buckets = (std::size_t{1} << window) - 1;
  std::vector<Bignum> bucket(buckets);
  std::vector<bool> bucket_set(buckets);
  const int blocks = (max_bits + window - 1) / window;
  Bignum acc;
  bool have_acc = false;
  auto mont_mul_into = [&](Bignum& dst, const Bignum& a, const Bignum& b) {
    if (BN_mod_mul_montgomery(dst.raw(), a.raw(), b.raw(), mont_, ctx) != 1) {
      throw CryptoError("BN_mod_mul_montgomery failed");
    }
  };
  for (int j = blocks - 1; j >= 0; --j) {
    if (have_acc) {
      for (int s = 0; s < window; ++s) mont_mul_into(acc, acc, acc);
    }
    // bucket[d-1] = product of every base whose j-th window digit is d.
    std::fill(bucket_set.begin(), bucket_set.end(), false);
    for (std::size_t i = 0; i < terms.size(); ++i) {
      const unsigned digit = window_digit(terms[i]->exponent.raw(), j, window);
      if (digit == 0) continue;
      Bignum& b = bucket[digit - 1];
      if (!bucket_set[digit - 1]) {
        b = bases[i];
        bucket_set[digit - 1] = true;
      } else {
        mont_mul_into(b, b, bases[i]);
      }
    }
    // ∑ d·bucket[d] via running suffix products: S = ∏_{k>=d} bucket[k],
    // T = ∏_d S_d = ∏_d bucket[d]^d, both with plain multiplies.
    Bignum suffix, window_sum;
    bool have_suffix = false, have_sum = false;
    for (std::size_t d = buckets; d >= 1; --d) {
      if (bucket_set[d - 1]) {
        if (!have_suffix) {
          suffix = bucket[d - 1];
          have_suffix = true;
        } else {
          mont_mul_into(suffix, suffix, bucket[d - 1]);
        }
      }
      if (have_suffix) {
        if (!have_sum) {
          window_sum = suffix;
          have_sum = true;
        } else {
          mont_mul_into(window_sum, window_sum, suffix);
        }
      }
    }
    if (have_sum) {
      if (!have_acc) {
        acc = window_sum;
        have_acc = true;
      } else {
        mont_mul_into(acc, acc, window_sum);
      }
    }
  }
  if (!have_acc) return Bignum(1);  // unreachable: exponents are non-zero
  Bignum out;
  if (BN_from_montgomery(out.raw(), acc.raw(), mont_, ctx) != 1) {
    throw CryptoError("BN_from_montgomery failed");
  }
  return out;
}

}  // namespace desword
