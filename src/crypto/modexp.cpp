#include "crypto/modexp.h"

#include "common/error.h"

namespace desword {

namespace {

BN_CTX* scratch() {
  thread_local BN_CTX* c = BN_CTX_new();
  if (c == nullptr) throw CryptoError("BN_CTX_new failed");
  return c;
}

}  // namespace

ModExpContext::ModExpContext(const Bignum& modulus)
    : modulus_(modulus), mont_(BN_MONT_CTX_new()) {
  if (!modulus.is_odd() || modulus <= Bignum(1)) {
    BN_MONT_CTX_free(mont_);
    throw CryptoError("ModExpContext requires an odd modulus > 1");
  }
  if (mont_ == nullptr ||
      BN_MONT_CTX_set(mont_, modulus_.raw(), scratch()) != 1) {
    BN_MONT_CTX_free(mont_);
    throw CryptoError("BN_MONT_CTX_set failed");
  }
}

ModExpContext::~ModExpContext() { BN_MONT_CTX_free(mont_); }

Bignum ModExpContext::exp(const Bignum& base, const Bignum& exponent) const {
  if (exponent.is_negative()) {
    throw CryptoError("ModExpContext::exp: negative exponent");
  }
  Bignum out;
  // Reduce the base first: BN_mod_exp_mont requires base < modulus.
  const Bignum reduced = base.mod(modulus_);
  if (BN_mod_exp_mont(out.raw(), reduced.raw(), exponent.raw(),
                      modulus_.raw(), scratch(), mont_) != 1) {
    throw CryptoError("BN_mod_exp_mont failed");
  }
  return out;
}

Bignum ModExpContext::exp_signed(const Bignum& base,
                                 const Bignum& exponent) const {
  if (!exponent.is_negative()) return exp(base, exponent);
  return Bignum::mod_inverse(exp(base, exponent.negated()), modulus_);
}

}  // namespace desword
