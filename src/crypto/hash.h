// SHA-256 hashing with domain separation.
//
// Every hash in the system is tagged: H(tag || len(part_1) || part_1 || ...),
// with each part length-prefixed, so distinct protocol uses can never collide
// structurally. Digest values that feed the mercurial commitment message
// space are truncated to 128 bits (see `kMessageBits` in mercurial/).
#pragma once

#include <initializer_list>
#include <string_view>

#include "common/bytes.h"

namespace desword {

inline constexpr std::size_t kSha256Size = 32;

/// Raw SHA-256 of a single buffer.
Bytes sha256(BytesView data);

/// Domain-separated hash: SHA-256 over the tag and length-prefixed parts.
Bytes hash_tagged(std::string_view tag, std::initializer_list<BytesView> parts);

/// Incremental variant for callers assembling many parts.
class TaggedHasher {
 public:
  explicit TaggedHasher(std::string_view tag);
  TaggedHasher& add(BytesView part);
  TaggedHasher& add_str(std::string_view part);
  TaggedHasher& add_u64(std::uint64_t v);
  /// Finalizes and returns the 32-byte digest. The hasher must not be
  /// reused afterwards.
  Bytes digest();

 private:
  void* md_ctx_;  // EVP_MD_CTX, kept opaque to avoid leaking openssl headers
};

/// First 16 bytes of a tagged hash — the 128-bit message domain used by the
/// mercurial commitments (messages must be < the 136-bit primes e_i).
Bytes hash_to_128(std::string_view tag, std::initializer_list<BytesView> parts);

}  // namespace desword
