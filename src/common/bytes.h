// Byte-buffer utilities shared across the DE-Sword codebase.
//
// `Bytes` is the canonical wire/value representation for identifiers, hashes,
// serialized commitments and protocol messages. All helpers are allocation
// friendly and exception safe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace desword {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Encodes `data` as a lowercase hex string.
std::string to_hex(BytesView data);

/// Decodes a hex string (upper or lower case). Throws std::invalid_argument
/// on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Copies a string's characters into a byte buffer (no encoding applied).
Bytes bytes_of(std::string_view s);

/// Interprets a byte buffer as a string (no encoding applied).
std::string string_of(BytesView data);

/// Appends `src` to `dst`.
void append(Bytes& dst, BytesView src);

/// Concatenates buffers left to right.
Bytes concat(std::initializer_list<BytesView> parts);

/// Constant-time equality: timing independent of where buffers differ.
/// (Lengths are compared in variable time; contents are not.)
bool ct_equal(BytesView a, BytesView b);

/// Big-endian encoding of a 64-bit integer (8 bytes).
Bytes be64(std::uint64_t v);

/// Reads a big-endian 64-bit integer from an 8-byte buffer.
/// Throws std::invalid_argument if `data.size() != 8`.
std::uint64_t read_be64(BytesView data);

}  // namespace desword
