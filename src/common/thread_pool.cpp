#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <map>

namespace desword {

namespace {

Mutex g_default_mu;
unsigned g_default_override DESWORD_GUARDED_BY(g_default_mu) = 0;  // 0 = none

unsigned hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads - 1);
  for (unsigned i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::run_one(Batch& batch) {
  std::size_t index;
  {
    MutexLock lk(mu_);
    if (batch.drained()) return false;
    index = batch.next++;
    ++batch.running;
  }
  std::exception_ptr err;
  try {
    (*batch.fn)(index);
  } catch (...) {
    err = std::current_exception();
  }
  {
    MutexLock lk(mu_);
    if (err) {
      if (!batch.error) batch.error = err;
      batch.stopped = true;  // abandon unclaimed indices
    }
    --batch.running;
    if (batch.done()) done_cv_.notify_all();
  }
  return true;
}

void ThreadPool::for_each(std::size_t n,
                          const std::function<void(std::size_t)>& f) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) f(i);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->fn = &f;
  {
    MutexLock lk(mu_);
    queue_.push_back(batch);
  }
  work_cv_.notify_all();

  // The caller drains its own batch; workers may claim indices too.
  while (run_one(*batch)) {
  }

  {
    MutexLock lk(mu_);
    while (!batch->done()) done_cv_.wait(lk);
    queue_.erase(std::remove(queue_.begin(), queue_.end(), batch),
                 queue_.end());
  }
  // Once done() was observed under the lock nothing writes the batch again,
  // so the error slot is safe to read outside it.
  if (batch->error) std::rethrow_exception(batch->error);
}

void ThreadPool::submit(std::function<void()> fn) {
  if (!fn) return;
  if (workers_.empty()) {
    // No workers to hand off to: degrade to inline execution, exactly like
    // for_each does on a concurrency-1 pool.
    fn();
    return;
  }
  {
    MutexLock lk(mu_);
    tasks_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    std::shared_ptr<Batch> batch;
    {
      MutexLock lk(mu_);
      while (!stop_ && queue_.empty() && tasks_.empty()) work_cv_.wait(lk);
      if (stop_) return;
      if (!tasks_.empty()) {
        task = std::move(tasks_.front());
        tasks_.pop_front();
      } else {
        batch = queue_.front();
        if (batch->drained()) {
          // Fully claimed (possibly still running elsewhere): retire it from
          // the queue and look for the next batch.
          queue_.pop_front();
          continue;
        }
      }
    }
    if (task) {
      try {
        task();
      } catch (...) {
        // Detached task: nobody to rethrow to. The Executor layer wraps
        // every submission in its own catch, so this is a last-resort
        // guard keeping a buggy task from terminating the worker.
      }
      continue;
    }
    while (run_one(*batch)) {
    }
  }
}

unsigned ThreadPool::default_threads() {
  {
    MutexLock lk(g_default_mu);
    if (g_default_override != 0) return g_default_override;
  }
  if (const char* env = std::getenv("DESWORD_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  return hardware_threads();
}

void ThreadPool::set_default_threads(unsigned threads) {
  MutexLock lk(g_default_mu);
  g_default_override = threads;
}

ThreadPool& ThreadPool::shared() { return with_threads(default_threads()); }

ThreadPool& ThreadPool::with_threads(unsigned threads) {
  if (threads == 0) threads = 1;
  static Mutex registry_mu;
  // Leaked intentionally: worker threads may outlive static destruction.
  static std::map<unsigned, std::unique_ptr<ThreadPool>>* registry =
      new std::map<unsigned, std::unique_ptr<ThreadPool>>();
  MutexLock lk(registry_mu);
  auto it = registry->find(threads);
  if (it == registry->end()) {
    it = registry->emplace(threads, std::make_unique<ThreadPool>(threads))
             .first;
  }
  return *it->second;
}

}  // namespace desword
