#include "common/rng.h"

#include <openssl/rand.h>

#include "common/error.h"

namespace desword {

Bytes random_bytes(std::size_t n) {
  Bytes out(n);
  if (n > 0 && RAND_bytes(out.data(), static_cast<int>(n)) != 1) {
    throw CryptoError("RAND_bytes failed");
  }
  return out;
}

std::uint64_t random_u64() {
  const Bytes b = random_bytes(8);
  return read_be64(b);
}

std::uint64_t SimRng::next() {
  // SplitMix64: fast, good statistical quality, trivially seedable.
  state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t SimRng::below(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = bound * ((~0ULL) / bound);
  std::uint64_t v;
  do {
    v = next();
  } while (v >= limit);
  return v % bound;
}

double SimRng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool SimRng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Bytes SimRng::bytes(std::size_t n) {
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    std::uint64_t v = next();
    for (int i = 0; i < 8 && out.size() < n; ++i) {
      out.push_back(static_cast<std::uint8_t>(v & 0xff));
      v >>= 8;
    }
  }
  return out;
}

}  // namespace desword
