// Minimal JSON reader/writer.
//
// Used by the command-line tools for human-editable inputs (trace
// databases, configuration). Supports the full JSON value model with
// UTF-8 pass-through, \uXXXX escapes (BMP only), a nesting-depth limit,
// and deterministic serialization (object keys keep insertion order).
// Numbers are stored as double plus an exact-int64 flag, which is enough
// for identifiers and timestamps used here.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.h"

namespace desword::json {

class Value;

using Array = std::vector<Value>;

/// Insertion-ordered object.
class Object {
 public:
  Value& operator[](const std::string& key);
  const Value* find(const std::string& key) const;
  bool contains(const std::string& key) const { return find(key) != nullptr; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

 private:
  std::vector<std::pair<std::string, Value>> entries_;
};

enum class Kind : std::uint8_t {
  kNull,
  kBool,
  kNumber,
  kString,
  kArray,
  kObject,
};

class Value {
 public:
  Value() : kind_(Kind::kNull) {}
  Value(std::nullptr_t) : kind_(Kind::kNull) {}  // NOLINT(runtime/explicit)
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}  // NOLINT
  Value(double d) : kind_(Kind::kNumber), num_(d) {}  // NOLINT
  Value(std::int64_t i)  // NOLINT
      : kind_(Kind::kNumber), num_(static_cast<double>(i)), int_(i),
        exact_int_(true) {}
  Value(const char* s) : kind_(Kind::kString), str_(s) {}  // NOLINT
  Value(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}  // NOLINT
  Value(Array a);   // NOLINT
  Value(Object o);  // NOLINT

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw SerializationError on kind mismatch.
  bool as_bool() const;
  double as_double() const;
  /// Exact integer (throws if the number was not an exact int64).
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& mutable_array();
  Object& mutable_object();

  /// Object member access with defaults (null if missing).
  const Value& at(const std::string& key) const;
  bool has(const std::string& key) const;

  /// Compact serialization.
  std::string dump() const;
  /// Pretty-printed serialization (two-space indent).
  std::string dump_pretty() const;

 private:
  friend class Parser;
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  bool exact_int_ = false;
  std::string str_;
  std::shared_ptr<Array> arr_;
  std::shared_ptr<Object> obj_;
};

/// Parses a JSON document. Throws SerializationError on malformed input.
Value parse(std::string_view text);

}  // namespace desword::json
