// Clang thread-safety (capability) annotation macros.
//
// These wrap Clang's `-Wthread-safety` attribute set so the lock
// discipline that keeps verdicts and reputation sound is checked at
// compile time, on every clang build, instead of only dynamically on the
// schedules TSan happens to sample. Under GCC/MSVC every macro expands to
// nothing, so the annotations cost nothing outside the analysis build.
//
// Usage pattern (see common/mutex.h for the annotated Mutex wrapper):
//
//   class Queue {
//    public:
//     void push(Item item) {
//       MutexLock lock(mu_);
//       items_.push_back(std::move(item));   // OK: mu_ held
//     }
//    private:
//     Mutex mu_;
//     std::deque<Item> items_ DESWORD_GUARDED_BY(mu_);
//   };
//
// The analysis is enforced by the `DESWORD_THREAD_SAFETY` CMake option
// (clang only): `-Wthread-safety -Werror=thread-safety`. The companion
// lint rule `raw-mutex` (tools/desword_lint.py) keeps every mutex in the
// tree on the annotated wrapper so no lock can silently opt out.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__)
#define DESWORD_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DESWORD_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a class as a capability (lockable) type. The string names the
/// capability kind in diagnostics ("mutex", "shared_mutex", ...).
#define DESWORD_CAPABILITY(x) DESWORD_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability (MutexLock and friends).
#define DESWORD_SCOPED_CAPABILITY DESWORD_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define DESWORD_GUARDED_BY(x) DESWORD_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define DESWORD_PT_GUARDED_BY(x) DESWORD_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability (exclusively) and holds it on return.
#define DESWORD_ACQUIRE(...) \
  DESWORD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function acquires the capability shared (reader) and holds it on return.
#define DESWORD_ACQUIRE_SHARED(...) \
  DESWORD_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (exclusive or, from a scoped
/// capability's destructor, whatever was acquired).
#define DESWORD_RELEASE(...) \
  DESWORD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function releases a shared (reader) hold of the capability.
#define DESWORD_RELEASE_SHARED(...) \
  DESWORD_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function attempts the acquisition; first argument is the return value
/// meaning success.
#define DESWORD_TRY_ACQUIRE(...) \
  DESWORD_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must already hold the capability (exclusively).
#define DESWORD_REQUIRES(...) \
  DESWORD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must hold the capability at least shared.
#define DESWORD_REQUIRES_SHARED(...) \
  DESWORD_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock guard for functions that
/// acquire it themselves, e.g. drain()).
#define DESWORD_EXCLUDES(...) \
  DESWORD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability (accessors).
#define DESWORD_RETURN_CAPABILITY(x) \
  DESWORD_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use MUST
/// carry a comment explaining why the access is sound (e.g. a
/// release/acquire published pointer read on a lock-free fast path, or
/// phase-disciplined state that is only shared during one build phase).
#define DESWORD_NO_THREAD_SAFETY_ANALYSIS \
  DESWORD_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Runtime-verified capability assertion (for code reachable both with
/// and without the lock where the caller guarantees it is held).
#define DESWORD_ASSERT_CAPABILITY(x) \
  DESWORD_THREAD_ANNOTATION(assert_capability(x))
