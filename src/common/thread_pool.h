// Minimal blocking thread pool for CPU-bound crypto fan-out.
//
// The ZK-EDB hot paths (EDB-commit, batch proof generation, batch
// verification) decompose into coarse independent units whose cost is
// dominated by modular exponentiation — milliseconds each — so a simple
// shared-queue pool with per-index claiming is within noise of a
// work-stealing scheduler while staying dependency-free and easy to audit.
//
// Model: `for_each(n, f)` runs f(0..n-1), the CALLING thread participates,
// and the call blocks until every index finished. Because a blocked caller
// always drains its own batch, nested for_each from inside a task cannot
// deadlock even when every worker is busy: the nested call simply degrades
// to sequential execution on the calling thread. The first exception thrown
// by any index abandons the batch's unclaimed indices and is rethrown to
// the caller once in-flight indices drain.
//
// Thread count resolution order: set_default_threads() override, then the
// DESWORD_THREADS environment variable, then hardware_concurrency().
// A pool of size 1 has no workers and executes everything inline, exactly
// reproducing single-threaded behavior.
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace desword {

class ThreadPool {
 public:
  /// Pool with total concurrency `threads` (>= 1): the caller plus
  /// `threads - 1` worker threads.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (worker threads + the participating caller).
  unsigned concurrency() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs f(i) for every i in [0, n), caller participating; blocks until
  /// all indices completed. Rethrows the first exception any index threw
  /// (remaining unclaimed indices are abandoned).
  void for_each(std::size_t n, const std::function<void(std::size_t)>& f);

  /// Fire-and-forget: enqueues `fn` for execution on a worker thread and
  /// returns immediately. On a pool with no workers (concurrency 1) the
  /// task runs inline on the calling thread instead. `fn` must not throw —
  /// an escaping exception from a detached task is swallowed (there is no
  /// caller to rethrow to); wrap tasks that can fail (the Executor layer
  /// does exactly that).
  void submit(std::function<void()> fn);

  /// Effective default concurrency: set_default_threads() override if any,
  /// else DESWORD_THREADS (clamped to >= 1), else hardware_concurrency().
  static unsigned default_threads();

  /// Process-wide override of default_threads(); 0 clears the override.
  static void set_default_threads(unsigned threads);

  /// Lazily-created process-wide pool of default_threads() concurrency.
  /// Note: sized on first use; later env/override changes pick a different
  /// pool via with_threads().
  static ThreadPool& shared();

  /// Lazily-created process-wide pool of exactly `threads` concurrency
  /// (threads >= 1). Pools are cached per count and shared by all callers.
  static ThreadPool& with_threads(unsigned threads);

 private:
  // Every Batch field is guarded by the owning pool's mu_ — a relationship
  // the capability annotations cannot express on a free-standing struct
  // (guarded_by needs the guarding member in scope), so the discipline is
  // documented here and checked by the accesses in thread_pool.cpp all
  // sitting inside MutexLock scopes (and by TSan via thread_pool_test).
  struct Batch {
    std::size_t n = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t next = 0;     // next unclaimed index   (guarded by pool mu_)
    std::size_t running = 0;  // in-flight executions   (guarded by pool mu_)
    bool stopped = false;     // error: abandon the rest (guarded by pool mu_)
    std::exception_ptr error;

    bool drained() const { return stopped || next >= n; }
    bool done() const { return drained() && running == 0; }
  };

  void worker_loop();
  /// Claims and runs one index of `batch`; false once the batch is drained.
  bool run_one(Batch& batch) DESWORD_EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar work_cv_;  // workers: a batch or task is available
  CondVar done_cv_;  // callers: a batch may have completed
  std::deque<std::shared_ptr<Batch>> queue_ DESWORD_GUARDED_BY(mu_);
  std::deque<std::function<void()>> tasks_ DESWORD_GUARDED_BY(mu_);
  bool stop_ DESWORD_GUARDED_BY(mu_) = false;
};

/// Convenience: run f(i) for i in [0, n) on `pool`, sequentially when
/// `pool` is null, its concurrency is 1, or n <= 1.
template <typename F>
void parallel_for(ThreadPool* pool, std::size_t n, F&& f) {
  if (pool == nullptr || pool->concurrency() <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) f(i);
    return;
  }
  const std::function<void(std::size_t)> fn = std::forward<F>(f);
  pool->for_each(n, fn);
}

}  // namespace desword
