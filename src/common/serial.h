// Minimal binary serialization used for commitments, proofs and protocol
// messages. The format is deliberately simple and deterministic:
//
//   * fixed-width integers are big-endian
//   * variable-width unsigned integers use LEB128-style varints
//   * byte strings are varint-length-prefixed
//
// Determinism matters: digests of serialized commitments feed back into the
// ZK-EDB tree, and Table II of the paper is reproduced by measuring the exact
// size of serialized proofs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/error.h"

namespace desword {

/// Appends encoded values to an internal buffer.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// LEB128 varint (1–10 bytes).
  void varint(std::uint64_t v);
  /// Varint length prefix followed by raw bytes.
  void bytes(BytesView data);
  /// Varint length prefix followed by raw characters.
  void str(std::string_view s);
  void boolean(bool v);

  /// Read-only view of everything written so far.
  BytesView view() const { return buf_; }
  /// Moves the buffer out; the writer is empty afterwards.
  Bytes take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Consumes encoded values from a buffer. Throws SerializationError on
/// truncation or malformed varints. The reader does not own the buffer.
class BinaryReader {
 public:
  explicit BinaryReader(BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::uint64_t varint();
  Bytes bytes();
  std::string str();
  bool boolean();

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  /// Throws SerializationError unless the whole buffer was consumed.
  void expect_done() const;

 private:
  BytesView take(std::size_t n);

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace desword
