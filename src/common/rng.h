// Randomness sources.
//
// Cryptographic randomness always comes from the OS CSPRNG (OpenSSL
// RAND_bytes). Simulation-level randomness (workload generation, Monte-Carlo
// incentive experiments) uses a seedable SplitMix64-based generator so that
// experiments are reproducible.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace desword {

/// Fills a fresh buffer with `n` cryptographically secure random bytes.
/// Throws CryptoError if the CSPRNG fails.
Bytes random_bytes(std::size_t n);

/// Uniform random 64-bit value from the CSPRNG.
std::uint64_t random_u64();

/// Deterministic, seedable PRNG for simulations. Not for cryptography.
class SimRng {
 public:
  explicit SimRng(std::uint64_t seed) : state_(seed) {}

  /// Next 64-bit value (SplitMix64).
  std::uint64_t next();

  /// Uniform value in [0, bound). `bound` must be non-zero.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool chance(double p);

  /// `n` deterministic pseudo-random bytes (for synthetic payloads).
  Bytes bytes(std::size_t n);

 private:
  std::uint64_t state_;
};

}  // namespace desword
