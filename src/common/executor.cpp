#include "common/executor.h"

#include <atomic>
#include <functional>
#include <thread>
#include <utility>

#include "common/timing.h"

namespace desword {

namespace {

// Hooks are stored as individual atomic function pointers so installation
// (once, at startup) and invocation (hot, from workers) need no lock and
// stay TSan-clean.
std::atomic<void (*)()> g_hook_submitted{nullptr};
std::atomic<void (*)(double, double)> g_hook_completed{nullptr};

}  // namespace

void set_executor_hooks(ExecutorHooks hooks) {
  g_hook_submitted.store(hooks.submitted, std::memory_order_relaxed);
  g_hook_completed.store(hooks.completed, std::memory_order_relaxed);
}

Executor::Executor(unsigned workers)
    // with_threads() counts total concurrency (caller + workers), so an
    // executor with `workers` OS worker threads needs a pool of width
    // workers + 1; workers == 0 maps to the inline concurrency-1 pool.
    : pool_(ThreadPool::with_threads(workers + 1)) {}

Executor::Executor(ThreadPool& pool) : pool_(pool) {}

Executor::~Executor() { drain(); }

void Executor::post(std::function<void()> fn) {
  if (!fn) return;
  {
    MutexLock lk(mu_);
    ++pending_;
  }
  if (auto* hook = g_hook_submitted.load(std::memory_order_relaxed)) hook();
  const std::uint64_t posted_ns = now_ns();
  pool_.submit([this, posted_ns, fn = std::move(fn)] {
    const std::uint64_t start_ns = now_ns();
    try {
      fn();
    } catch (...) {
      // Fire-and-forget: there is no caller to rethrow to. Tasks that can
      // fail report through their own completion channel.
    }
    const std::uint64_t end_ns = now_ns();
    // The completion hook fires BEFORE the pending count drops: drain()
    // returning must imply every submitted task's metrics have landed, or
    // a completion could be attributed past the executor's lifetime.
    if (auto* hook = g_hook_completed.load(std::memory_order_relaxed)) {
      hook(static_cast<double>(start_ns - posted_ns) / 1e6,
           static_cast<double>(end_ns - start_ns) / 1e6);
    }
    {
      MutexLock lk(mu_);
      if (--pending_ == 0) idle_cv_.notify_all();
    }
  });
}

void Executor::drain() {
  MutexLock lk(mu_);
  while (pending_ != 0) idle_cv_.wait(lk);
}

std::size_t Executor::pending() const {
  MutexLock lk(mu_);
  return pending_;
}

Strand::Strand(std::shared_ptr<Executor> executor)
    : executor_(std::move(executor)), state_(std::make_shared<State>()) {}

void Strand::post(std::function<void()> fn) {
  if (!fn) return;
  bool start_drainer = false;
  {
    MutexLock lk(state_->mu);
    state_->queue.push_back(std::move(fn));
    if (!state_->running) {
      state_->running = true;
      start_drainer = true;
    }
  }
  if (start_drainer) {
    // The drainer holds the state alive by shared_ptr; on an inline
    // executor it runs (and empties the queue) before post() returns.
    auto state = state_;
    executor_->post([state] { run_queue(state); });
  }
}

void Strand::run_queue(const std::shared_ptr<State>& state) {
  const std::size_t self_hash =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lk(state->mu);
      if (state->queue.empty()) {
        state->running = false;
        state->idle_cv.notify_all();
        return;
      }
      task = std::move(state->queue.front());
      state->queue.pop_front();
    }
    state->executing_thread_hash.store(self_hash, std::memory_order_relaxed);
    try {
      task();
    } catch (...) {
      // Same fire-and-forget contract as Executor::post.
    }
    state->executing_thread_hash.store(0, std::memory_order_relaxed);
  }
}

void Strand::drain() {
  MutexLock lk(state_->mu);
  while (!(state_->queue.empty() && !state_->running)) {
    state_->idle_cv.wait(lk);
  }
}

std::size_t Strand::pending() const {
  MutexLock lk(state_->mu);
  return state_->queue.size() + (state_->running ? 1 : 0);
}

bool Strand::running_on_this_thread() const {
  const std::size_t self_hash =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return state_->executing_thread_hash.load(std::memory_order_relaxed) ==
         self_hash;
}

}  // namespace desword
