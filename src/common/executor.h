// Task-queue execution layer decoupling CPU-bound crypto work from the
// single-threaded transport event loop.
//
// The protocol endpoints (proxy, participants) are event-driven state
// machines that must never block their event loop on a modular
// exponentiation chain. They hand crypto work to an `Executor` — a
// fire-and-forget task queue backed by the shared `ThreadPool` — and
// receive the result back on the loop thread via `net::Transport::post()`.
//
// Ordering is provided by `Strand`, a serial sub-executor in the asio
// tradition: tasks posted to one strand run one at a time, in post order,
// but different strands run concurrently on the underlying pool. The
// protocol maps state onto strands as:
//
//   * one strand per participant — proof generation is serialized per
//     node (the prover memoizes into its decommitment state), while
//     distinct participants prove concurrently;
//   * one strand per proxy query session — a session's verifications are
//     ordered, while distinct sessions verify concurrently.
//
// An `Executor` constructed with 0 workers runs every task inline on the
// posting thread, reproducing single-threaded behavior exactly — the
// protocol layer uses "no executor at all" for the bit-identical legacy
// path and an inline executor only ever appears in tests.
//
// Lifetime rule: tasks capture raw pointers to their owner, so the owner
// MUST `drain()` its strands/executor before destruction (the protocol
// destructors do). `drain()` blocks until every in-flight and queued task
// finished; it must not be called from inside a task.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>

#include "common/mutex.h"
#include "common/thread_pool.h"

namespace desword {

/// Process-wide executor instrumentation hooks.
///
/// `desword_common` sits below the obs metrics layer, so the executor
/// cannot record instruments directly; instead the obs layer (which links
/// above common) installs these hooks once at startup via
/// `obs::install_executor_metrics()`. Both hooks may run concurrently from
/// worker threads and must be thread-safe. A null hook is skipped.
struct ExecutorHooks {
  /// A task was posted (called on the posting thread, before execution).
  void (*submitted)() = nullptr;
  /// A task finished. `wait_ms` is post-to-start queueing delay, `run_ms`
  /// the task's own execution time (called on the executing thread).
  void (*completed)(double wait_ms, double run_ms) = nullptr;
};

/// Installs process-wide hooks for every Executor. Safe to call more than
/// once (last installation wins) and concurrently with running executors.
void set_executor_hooks(ExecutorHooks hooks);

class Executor {
 public:
  /// Executor with `workers` dedicated OS worker threads, shared (via the
  /// ThreadPool::with_threads cache) with every other executor of the same
  /// width. `workers == 0` means inline execution on the posting thread.
  explicit Executor(unsigned workers);
  /// Executor over an explicit pool (tests; pool concurrency 1 = inline).
  explicit Executor(ThreadPool& pool);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueues `fn` for execution on a worker (or runs it inline when the
  /// executor has no workers). Exceptions escaping `fn` are swallowed —
  /// post work that reports failure through its own channel.
  void post(std::function<void()> fn);

  /// Blocks until every posted task has finished. Must not be called from
  /// inside a posted task (it would wait on itself).
  void drain() DESWORD_EXCLUDES(mu_);

  /// Tasks posted but not yet finished.
  std::size_t pending() const DESWORD_EXCLUDES(mu_);

  /// True when tasks run inline on the posting thread (no workers).
  bool inline_mode() const { return pool_.concurrency() <= 1; }

 private:
  ThreadPool& pool_;
  mutable Mutex mu_;
  CondVar idle_cv_;
  std::size_t pending_ DESWORD_GUARDED_BY(mu_) = 0;
};

/// Serial sub-executor: tasks run in post order, never concurrently with
/// each other. Internally keeps a queue and at most one "drainer" task on
/// the executor which runs queued entries until the queue empties.
///
/// The queue state is held by shared_ptr so a drainer scheduled on the
/// pool stays valid even if the Strand object itself is destroyed — but
/// the *tasks* still reference their owner, so owners drain before death.
class Strand {
 public:
  explicit Strand(std::shared_ptr<Executor> executor);

  /// Enqueues `fn` behind every previously posted task of this strand.
  void post(std::function<void()> fn);

  /// Blocks until the strand's queue is empty and no task is running.
  void drain();

  /// Tasks posted to this strand but not yet finished.
  std::size_t pending() const;

  /// True iff the calling thread is currently executing a task posted to
  /// this strand. Used by debug affinity assertions inside strand
  /// continuations (DESIGN.md §10); false from any other thread,
  /// including between this strand's tasks.
  bool running_on_this_thread() const;

 private:
  struct State {
    Mutex mu;
    CondVar idle_cv;
    std::deque<std::function<void()>> queue DESWORD_GUARDED_BY(mu);
    bool running DESWORD_GUARDED_BY(mu) = false;  // a drainer owns the strand
    // Hash of the thread id currently running a task of this strand (0 =
    // none). Written by the drainer around each task, read lock-free by
    // running_on_this_thread(); plain relaxed atomics suffice because the
    // only reader that can observe its own id is the executing thread.
    std::atomic<std::size_t> executing_thread_hash{0};
  };

  static void run_queue(const std::shared_ptr<State>& state);

  std::shared_ptr<Executor> executor_;
  std::shared_ptr<State> state_;
};

}  // namespace desword
