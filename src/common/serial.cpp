#include "common/serial.h"

namespace desword {

void BinaryWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void BinaryWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void BinaryWriter::u32(std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void BinaryWriter::u64(std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void BinaryWriter::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void BinaryWriter::bytes(BytesView data) {
  varint(data.size());
  append(buf_, data);
}

void BinaryWriter::str(std::string_view s) {
  varint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void BinaryWriter::boolean(bool v) { buf_.push_back(v ? 1 : 0); }

BytesView BinaryReader::take(std::size_t n) {
  if (remaining() < n) {
    throw SerializationError("truncated input: need " + std::to_string(n) +
                             " bytes, have " + std::to_string(remaining()));
  }
  BytesView out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::uint8_t BinaryReader::u8() { return take(1)[0]; }

std::uint16_t BinaryReader::u16() {
  BytesView b = take(2);
  return static_cast<std::uint16_t>((b[0] << 8) | b[1]);
}

std::uint32_t BinaryReader::u32() {
  BytesView b = take(4);
  std::uint32_t v = 0;
  for (std::uint8_t byte : b) v = (v << 8) | byte;
  return v;
}

std::uint64_t BinaryReader::u64() {
  BytesView b = take(8);
  std::uint64_t v = 0;
  for (std::uint8_t byte : b) v = (v << 8) | byte;
  return v;
}

std::uint64_t BinaryReader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    const std::uint8_t byte = u8();
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      if (i == 9 && byte > 1) {
        throw SerializationError("varint overflows 64 bits");
      }
      // Reject non-minimal encodings (e.g. 1 as 81 00): serialized bytes
      // feed digests, so decode(encode(x)) must be the only spelling of x.
      if (i > 0 && byte == 0) {
        throw SerializationError("non-minimal varint encoding");
      }
      return v;
    }
    shift += 7;
  }
  throw SerializationError("varint too long");
}

Bytes BinaryReader::bytes() {
  const std::uint64_t n = varint();
  if (n > remaining()) {
    throw SerializationError("byte-string length exceeds remaining input");
  }
  BytesView b = take(static_cast<std::size_t>(n));
  return Bytes(b.begin(), b.end());
}

std::string BinaryReader::str() {
  const Bytes b = bytes();
  return std::string(b.begin(), b.end());
}

bool BinaryReader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) throw SerializationError("boolean byte out of range");
  return v == 1;
}

void BinaryReader::expect_done() const {
  if (!done()) {
    throw SerializationError("trailing bytes after message: " +
                             std::to_string(remaining()));
  }
}

}  // namespace desword
