// Error taxonomy for DE-Sword.
//
// Programming and environment failures (bad arguments, OpenSSL failures,
// malformed serialized data) are reported via exceptions derived from
// `desword::Error`. *Expected* negative outcomes — e.g. a proof failing to
// verify because a participant cheated — are modelled as values
// (enums / bools) on the relevant APIs, never as exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace desword {

/// Root of the DE-Sword exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Low-level cryptographic backend failure (OpenSSL error, parameter misuse).
class CryptoError : public Error {
 public:
  explicit CryptoError(const std::string& what) : Error("crypto: " + what) {}
};

/// Malformed or truncated serialized data.
class SerializationError : public Error {
 public:
  explicit SerializationError(const std::string& what)
      : Error("serialization: " + what) {}
};

/// Protocol state-machine misuse or malformed protocol message.
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what)
      : Error("protocol: " + what) {}
};

/// Invalid configuration (e.g. q^h does not cover the key space).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config: " + what) {}
};

/// Violated internal invariant (a bug in DE-Sword itself, not bad input).
/// Thrown by DESWORD_CHECK so broken invariants fail loudly in Release
/// builds too, instead of silently corrupting state like a compiled-out
/// assert() would.
class CheckError : public Error {
 public:
  explicit CheckError(const std::string& what) : Error("check: " + what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  throw CheckError(std::string(file) + ":" + std::to_string(line) +
                   ": invariant `" + expr + "` violated" +
                   (msg.empty() ? "" : ": " + msg));
}
}  // namespace detail

}  // namespace desword

/// Always-on invariant check. Unlike assert(), active in every build type;
/// failure throws desword::CheckError with file/line context.
#define DESWORD_CHECK(cond, ...)                                        \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::desword::detail::check_failed(#cond, __FILE__, __LINE__,        \
                                      ::std::string{__VA_ARGS__});      \
    }                                                                   \
  } while (false)

/// Debug-only invariant check for hot paths: compiled out under NDEBUG,
/// identical to DESWORD_CHECK otherwise.
#ifdef NDEBUG
#define DESWORD_DCHECK(cond, ...) \
  do {                            \
  } while (false)
#else
#define DESWORD_DCHECK(cond, ...) DESWORD_CHECK(cond, ##__VA_ARGS__)
#endif
