// Error taxonomy for DE-Sword.
//
// Programming and environment failures (bad arguments, OpenSSL failures,
// malformed serialized data) are reported via exceptions derived from
// `desword::Error`. *Expected* negative outcomes — e.g. a proof failing to
// verify because a participant cheated — are modelled as values
// (enums / bools) on the relevant APIs, never as exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace desword {

/// Root of the DE-Sword exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Low-level cryptographic backend failure (OpenSSL error, parameter misuse).
class CryptoError : public Error {
 public:
  explicit CryptoError(const std::string& what) : Error("crypto: " + what) {}
};

/// Malformed or truncated serialized data.
class SerializationError : public Error {
 public:
  explicit SerializationError(const std::string& what)
      : Error("serialization: " + what) {}
};

/// Protocol state-machine misuse or malformed protocol message.
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what)
      : Error("protocol: " + what) {}
};

/// Invalid configuration (e.g. q^h does not cover the key space).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config: " + what) {}
};

}  // namespace desword
