// Annotated mutex wrappers: the one home of raw std:: synchronization
// primitives outside tests.
//
// Every mutex-bearing type in src/ uses these wrappers instead of bare
// std::mutex/std::lock_guard so the Clang thread-safety analysis
// (common/annotations.h, CMake option DESWORD_THREAD_SAFETY) can prove at
// compile time that every DESWORD_GUARDED_BY member is only touched under
// its lock. The `raw-mutex` rule in tools/desword_lint.py rejects bare
// std primitives anywhere else (waivable per line for the rare justified
// exception).
//
// The RAII lockers follow the exact pattern the Clang analysis documents
// for scoped capabilities: the constructor is annotated DESWORD_ACQUIRE
// and its body calls the annotated lock(), so the analysis sees the
// acquisition it promises. `CondVar` is a std::condition_variable_any
// waiting on the `Mutex` itself; the capability stays held across wait()
// from the analysis's point of view, which matches the caller-visible
// contract (predicates are re-evaluated under the lock). Use explicit
// `while (!predicate) cv.wait(lock);` loops — lambda predicates would be
// analyzed as separate functions and lose the capability context.
#pragma once

#include <chrono>
#include <condition_variable>  // desword-lint: allow(raw-mutex)
#include <mutex>               // desword-lint: allow(raw-mutex)
#include <shared_mutex>        // desword-lint: allow(raw-mutex)

#include "common/annotations.h"

namespace desword {

/// Exclusive mutex. Prefer the RAII `MutexLock`; manual lock()/unlock()
/// participates in the analysis too.
class DESWORD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DESWORD_ACQUIRE() { mu_.lock(); }
  void unlock() DESWORD_RELEASE() { mu_.unlock(); }
  bool try_lock() DESWORD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;  // desword-lint: allow(raw-mutex)
};

/// RAII exclusive lock over `Mutex`.
class DESWORD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DESWORD_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() DESWORD_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mu_;
};

/// Condition variable paired with `Mutex`/`MutexLock`. The capability is
/// considered held across wait() (it is released and reacquired inside,
/// which is exactly the contract callers rely on: the predicate must be
/// re-checked after every wakeup).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.mu_); }

  /// Waits until notified or `deadline`; returns false on timeout.
  template <typename Clock, typename Duration>
  bool wait_until(MutexLock& lock,
                  const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.mu_, deadline) == std::cv_status::no_timeout;
  }

  /// Waits until notified or `rel_time` elapsed; returns false on timeout.
  template <typename Rep, typename Period>
  bool wait_for(MutexLock& lock,
                const std::chrono::duration<Rep, Period>& rel_time) {
    return cv_.wait_for(lock.mu_, rel_time) == std::cv_status::no_timeout;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  // _any: waits directly on the annotated Mutex (a BasicLockable), so no
  // raw std::unique_lock ever escapes into calling code.
  std::condition_variable_any cv_;  // desword-lint: allow(raw-mutex)
};

/// Reader/writer mutex (modp fixed-base table cache: many concurrent
/// exponentiators, rare table registration).
class DESWORD_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() DESWORD_ACQUIRE() { mu_.lock(); }
  void unlock() DESWORD_RELEASE() { mu_.unlock(); }
  void lock_shared() DESWORD_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() DESWORD_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;  // desword-lint: allow(raw-mutex)
};

/// RAII shared (reader) lock over `SharedMutex`.
class DESWORD_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) DESWORD_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() DESWORD_RELEASE() { mu_.unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock over `SharedMutex`.
class DESWORD_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) DESWORD_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() DESWORD_RELEASE() { mu_.unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace desword
