#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace desword::json {

namespace {
constexpr int kMaxDepth = 64;

[[noreturn]] void fail(const std::string& what) {
  throw SerializationError("json: " + what);
}
}  // namespace

Value& Object::operator[](const std::string& key) {
  for (auto& [k, v] : entries_) {
    if (k == key) return v;
  }
  entries_.emplace_back(key, Value());
  return entries_.back().second;
}

const Value* Object::find(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value::Value(Array a)
    : kind_(Kind::kArray), arr_(std::make_shared<Array>(std::move(a))) {}

Value::Value(Object o)
    : kind_(Kind::kObject), obj_(std::make_shared<Object>(std::move(o))) {}

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) fail("not a bool");
  return bool_;
}

double Value::as_double() const {
  if (kind_ != Kind::kNumber) fail("not a number");
  return num_;
}

std::int64_t Value::as_int() const {
  if (kind_ != Kind::kNumber) fail("not a number");
  if (exact_int_) return int_;
  const double rounded = std::nearbyint(num_);
  if (rounded != num_ || std::abs(num_) > 9.007199254740992e15) {
    fail("number is not an exact integer");
  }
  return static_cast<std::int64_t>(rounded);
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) fail("not a string");
  return str_;
}

const Array& Value::as_array() const {
  if (kind_ != Kind::kArray) fail("not an array");
  return *arr_;
}

const Object& Value::as_object() const {
  if (kind_ != Kind::kObject) fail("not an object");
  return *obj_;
}

Array& Value::mutable_array() {
  if (kind_ == Kind::kNull) {
    kind_ = Kind::kArray;
    arr_ = std::make_shared<Array>();
  }
  if (kind_ != Kind::kArray) fail("not an array");
  if (arr_.use_count() > 1) arr_ = std::make_shared<Array>(*arr_);
  return *arr_;
}

Object& Value::mutable_object() {
  if (kind_ == Kind::kNull) {
    kind_ = Kind::kObject;
    obj_ = std::make_shared<Object>();
  }
  if (kind_ != Kind::kObject) fail("not an object");
  if (obj_.use_count() > 1) obj_ = std::make_shared<Object>(*obj_);
  return *obj_;
}

const Value& Value::at(const std::string& key) const {
  static const Value kNull;
  if (kind_ != Kind::kObject) return kNull;
  const Value* v = obj_->find(key);
  return v == nullptr ? kNull : *v;
}

bool Value::has(const std::string& key) const {
  return kind_ == Kind::kObject && obj_->contains(key);
}

namespace {

void escape_to(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void indent_to(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Value::dump_to(std::string& out, int indent, int depth) const {
  if (depth > kMaxDepth) fail("nesting too deep while dumping");
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber: {
      if (exact_int_) {
        out += std::to_string(int_);
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", num_);
        out += buf;
      }
      return;
    }
    case Kind::kString:
      escape_to(str_, out);
      return;
    case Kind::kArray: {
      if (arr_->empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      bool first = true;
      for (const Value& v : *arr_) {
        if (!first) out.push_back(',');
        first = false;
        indent_to(out, indent, depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      indent_to(out, indent, depth);
      out.push_back(']');
      return;
    }
    case Kind::kObject: {
      if (obj_->empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : *obj_) {
        if (!first) out.push_back(',');
        first = false;
        indent_to(out, indent, depth + 1);
        escape_to(k, out);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        v.dump_to(out, indent, depth + 1);
      }
      indent_to(out, indent, depth);
      out.push_back('}');
      return;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  dump_to(out, 0, 0);
  return out;
}

std::string Value::dump_pretty() const {
  std::string out;
  dump_to(out, 2, 0);
  out.push_back('\n');
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("bad literal");
      default:
        return parse_number();
    }
  }

  Value parse_object(int depth) {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      Value v = parse_value(depth + 1);
      if (obj.contains(key)) fail("duplicate key: " + key);
      obj[key] = std::move(v);
      skip_ws();
      const char c = next();
      if (c == '}') return Value(std::move(obj));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array(int depth) {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = next();
      if (c == ']') return Value(std::move(arr));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = next();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // Encode BMP code point as UTF-8 (surrogates rejected).
          if (code >= 0xd800 && code <= 0xdfff) {
            fail("surrogate pairs not supported");
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") fail("bad number");
    // Exact integer when it round-trips through int64.
    const bool integral =
        token.find('.') == std::string::npos &&
        token.find('e') == std::string::npos &&
        token.find('E') == std::string::npos;
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Value(static_cast<std::int64_t>(v));
      }
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("bad number: " + token);
    return Value(d);
  }

  [[noreturn]] void fail(const std::string& what) {
    throw SerializationError("json: " + what + " (at offset " +
                             std::to_string(pos_) + ")");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Value parse(std::string_view text) { return Parser(text).run(); }

}  // namespace desword::json
