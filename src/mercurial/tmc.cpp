#include "mercurial/tmc.h"

#include "common/error.h"
#include "common/serial.h"
#include "crypto/hash.h"

namespace desword::mercurial {

Bytes TmcPublicKey::serialize() const {
  BinaryWriter w;
  w.bytes(g);
  w.bytes(h);
  return w.take();
}

TmcPublicKey TmcPublicKey::deserialize(const Group& group, BytesView data) {
  BinaryReader r(data);
  TmcPublicKey pk{r.bytes(), r.bytes()};
  r.expect_done();
  if (!group.is_valid_element(pk.g) || !group.is_valid_element(pk.h)) {
    throw SerializationError("TMC public key contains invalid element");
  }
  return pk;
}

Bytes TmcCommitment::serialize() const {
  BinaryWriter w;
  w.bytes(c0);
  w.bytes(c1);
  return w.take();
}

TmcCommitment TmcCommitment::deserialize(const Group& group, BytesView data) {
  BinaryReader r(data);
  TmcCommitment com{r.bytes(), r.bytes()};
  r.expect_done();
  if (com.c0.size() != group.element_size() ||
      com.c1.size() != group.element_size()) {
    throw SerializationError("TMC commitment element has wrong size");
  }
  return com;
}

Bytes TmcOpening::serialize(const Group& group) const {
  const std::size_t len =
      static_cast<std::size_t>((group.order().bits() + 7) / 8);
  BinaryWriter w;
  w.bytes(message);
  w.bytes(r0.to_bytes_padded(len));
  w.bytes(r1.to_bytes_padded(len));
  return w.take();
}

TmcOpening TmcOpening::deserialize(const Group& group, BytesView data) {
  BinaryReader r(data);
  TmcOpening op{r.bytes(), Bignum::from_bytes(r.bytes()),
                Bignum::from_bytes(r.bytes())};
  r.expect_done();
  if (op.message.size() != kMessageBytes || op.r0 >= group.order() ||
      op.r1 >= group.order()) {
    throw SerializationError("malformed TMC opening");
  }
  return op;
}

Bytes TmcTease::serialize(const Group& group) const {
  const std::size_t len =
      static_cast<std::size_t>((group.order().bits() + 7) / 8);
  BinaryWriter w;
  w.bytes(message);
  w.bytes(tau.to_bytes_padded(len));
  return w.take();
}

TmcTease TmcTease::deserialize(const Group& group, BytesView data) {
  BinaryReader r(data);
  TmcTease t{r.bytes(), Bignum::from_bytes(r.bytes())};
  r.expect_done();
  if (t.message.size() != kMessageBytes || t.tau >= group.order()) {
    throw SerializationError("malformed TMC tease");
  }
  return t;
}

TmcKeyPair TmcScheme::keygen(const GroupPtr& group) {
  Bignum a = group->random_scalar();
  while (a.is_zero()) a = group->random_scalar();
  TmcPublicKey pk{group->generator(), group->exp_g(a)};
  return TmcKeyPair{std::move(pk), std::move(a)};
}

TmcScheme::TmcScheme(GroupPtr group, TmcPublicKey pk)
    : group_(std::move(group)), pk_(std::move(pk)) {
  if (!group_->is_valid_element(pk_.g) || !group_->is_valid_element(pk_.h)) {
    throw CryptoError("TMC public key invalid for group");
  }
}

std::size_t TmcScheme::scalar_len() const {
  return static_cast<std::size_t>((group_->order().bits() + 7) / 8);
}

std::pair<TmcCommitment, TmcHardDecommit> TmcScheme::hard_commit(
    BytesView msg) const {
  return hard_commit(msg, system_random());
}

std::pair<TmcCommitment, TmcHardDecommit> TmcScheme::hard_commit(
    BytesView msg, RandomSource& rng) const {
  const Bignum m = message_to_scalar(msg);
  Bignum r0 = rng.rand_range(group_->order());
  Bignum r1 = rng.rand_range(group_->order());
  while (r1.is_zero()) r1 = rng.rand_range(group_->order());
  const Bytes c1 = group_->exp(pk_.h, r1);
  // m may be the all-zero null message; g^0 is the identity, which has no
  // encoding on the EC backend, so fold it in only when non-zero.
  Bytes c0 = group_->exp(c1, r0);
  if (!m.is_zero()) c0 = group_->mul(group_->exp(pk_.g, m), c0);
  return {TmcCommitment{c0, c1},
          TmcHardDecommit{Bytes(msg.begin(), msg.end()), std::move(r0),
                          std::move(r1)}};
}

TmcOpening TmcScheme::hard_open(const TmcHardDecommit& dec) const {
  return TmcOpening{dec.message, dec.r0, dec.r1};
}

TmcTease TmcScheme::tease_hard(const TmcHardDecommit& dec) const {
  return TmcTease{dec.message, dec.r0};
}

std::pair<TmcCommitment, TmcSoftDecommit> TmcScheme::soft_commit() const {
  return soft_commit(system_random());
}

std::pair<TmcCommitment, TmcSoftDecommit> TmcScheme::soft_commit(
    RandomSource& rng) const {
  Bignum r0 = rng.rand_range(group_->order());
  Bignum r1 = rng.rand_range(group_->order());
  while (r1.is_zero()) r1 = rng.rand_range(group_->order());
  TmcCommitment com{group_->exp(pk_.g, r0), group_->exp(pk_.g, r1)};
  return {std::move(com), TmcSoftDecommit{std::move(r0), std::move(r1)}};
}

TmcTease TmcScheme::tease_soft(const TmcSoftDecommit& dec,
                               BytesView msg) const {
  const Bignum m = message_to_scalar(msg);
  // τ = (r0 - m) / r1 mod p: then g^m · C1^τ = g^{m + r1·τ} = g^{r0} = C0.
  const Bignum& p = group_->order();
  const Bignum inv_r1 = Bignum::mod_inverse(dec.r1, p);
  Bignum tau = Bignum::mod_mul((dec.r0 - m).mod(p), inv_r1, p);
  return TmcTease{Bytes(msg.begin(), msg.end()), std::move(tau)};
}

bool TmcScheme::open_equations(const TmcCommitment& com, const TmcOpening& op,
                               std::vector<EcEquation>& out) const {
  if (op.message.size() != kMessageBytes) return false;
  if (!group_->is_valid_element(com.c0) || !group_->is_valid_element(com.c1)) {
    return false;
  }
  // Zero randomizers make a term the group identity; the EC backend cannot
  // encode it and the scalar verifier rejects via the resulting exception.
  // Reject structurally so the batched fold (which would just drop the
  // term) reaches the same verdict. Honest openings never hit this.
  const Bignum& p = group_->order();
  if (op.r0.mod(p).is_zero() || op.r1.mod(p).is_zero()) return false;
  // h^{r1} == C1.
  EcEquation hard;
  hard.lhs.push_back(EcTerm{EcTerm::Kind::kH, Bytes(), op.r1});
  hard.rhs = com.c1;
  out.push_back(std::move(hard));
  // g^m · C1^{r0} == C0 (the g term drops for the null message, matching
  // the scalar verifier).
  EcEquation eq;
  const Bignum m = message_to_scalar(op.message);
  if (!m.is_zero()) eq.lhs.push_back(EcTerm{EcTerm::Kind::kG, Bytes(), m});
  eq.lhs.push_back(EcTerm{EcTerm::Kind::kGeneric, com.c1, op.r0});
  eq.rhs = com.c0;
  out.push_back(std::move(eq));
  return true;
}

bool TmcScheme::tease_equations(const TmcCommitment& com, const TmcTease& tease,
                                std::vector<EcEquation>& out) const {
  if (tease.message.size() != kMessageBytes) return false;
  if (!group_->is_valid_element(com.c0) || !group_->is_valid_element(com.c1)) {
    return false;
  }
  // See open_equations: zero τ is the unencodable identity on EC backends.
  if (tease.tau.mod(group_->order()).is_zero()) return false;
  EcEquation eq;
  const Bignum m = message_to_scalar(tease.message);
  if (!m.is_zero()) eq.lhs.push_back(EcTerm{EcTerm::Kind::kG, Bytes(), m});
  eq.lhs.push_back(EcTerm{EcTerm::Kind::kGeneric, com.c1, tease.tau});
  eq.rhs = com.c0;
  out.push_back(std::move(eq));
  return true;
}

const Bytes& TmcScheme::term_elem(const EcTerm& term) const {
  switch (term.kind) {
    case EcTerm::Kind::kG:
      return pk_.g;
    case EcTerm::Kind::kH:
      return pk_.h;
    case EcTerm::Kind::kGeneric:
      return term.elem;
  }
  throw CryptoError("TMC term_elem: bad kind");
}

bool TmcScheme::check_scalar(const EcEquation& eq) const {
  Bytes acc;
  bool have_acc = false;
  for (const EcTerm& term : eq.lhs) {
    Bytes factor = group_->exp(term_elem(term), term.scalar);
    acc = have_acc ? group_->mul(acc, factor) : std::move(factor);
    have_acc = true;
  }
  return have_acc && acc == eq.rhs;
}

bool TmcScheme::verify_open(const TmcCommitment& com,
                            const TmcOpening& op) const {
  try {
    std::vector<EcEquation> eqs;
    if (!open_equations(com, op, eqs)) return false;
    for (const EcEquation& eq : eqs) {
      if (!check_scalar(eq)) return false;
    }
    return true;
  } catch (const Error&) {
    return false;
  }
}

bool TmcScheme::verify_tease(const TmcCommitment& com,
                             const TmcTease& tease) const {
  try {
    std::vector<EcEquation> eqs;
    if (!tease_equations(com, tease, eqs)) return false;
    for (const EcEquation& eq : eqs) {
      if (!check_scalar(eq)) return false;
    }
    return true;
  } catch (const Error&) {
    return false;
  }
}

std::pair<TmcCommitment, TmcSoftDecommit> TmcScheme::fake_commit(
    const Bignum& trapdoor) const {
  // Looks exactly like a hard commitment (C1 is a power of h with known
  // exponent) but C0 carries no message; fake_open solves for r0 later.
  Bignum r1 = group_->random_scalar();
  while (r1.is_zero()) r1 = group_->random_scalar();
  Bignum k = group_->random_scalar();
  TmcCommitment com{group_->exp(pk_.g, k), group_->exp(pk_.h, r1)};
  (void)trapdoor;  // not needed until fake_open
  return {std::move(com), TmcSoftDecommit{std::move(k), std::move(r1)}};
}

TmcOpening TmcScheme::fake_open(const TmcSoftDecommit& dec,
                                const Bignum& trapdoor, BytesView msg) const {
  // C0 = g^k; we need C0 = g^m · C1^{r0} = g^{m + a·r1·r0}, so
  // r0 = (k - m) / (a · r1) mod p.
  const Bignum m = message_to_scalar(msg);
  const Bignum& p = group_->order();
  const Bignum denom = Bignum::mod_mul(trapdoor.mod(p), dec.r1, p);
  const Bignum r0 =
      Bignum::mod_mul((dec.r0 - m).mod(p), Bignum::mod_inverse(denom, p), p);
  return TmcOpening{Bytes(msg.begin(), msg.end()), r0, dec.r1};
}

void TmcScheme::precompute_fixed_bases() const {
  group_->precompute_base(pk_.g);
  group_->precompute_base(pk_.h);
}

}  // namespace desword::mercurial
