// Trapdoor Mercurial Commitment (TMC) over a prime-order group.
//
// Pedersen-style instantiation of Chase–Healy–Lysyanskaya–Malkin–Reyzin
// (EUROCRYPT 2005), the primitive the paper's §VI-A micro-benchmarks:
//
//   CRS: generators g, h = g^a (trapdoor a held by the CRS generator).
//
//   Hard commit to m:  C1 = h^{r1},  C0 = g^m · C1^{r0}
//     - hard open  -> (m, r0, r1):  check C1 = h^{r1} and C0 = g^m C1^{r0}
//     - soft open  -> (m, τ = r0):  check C0 = g^m C1^{τ}
//   Soft commit:       C1 = g^{r1},  C0 = g^{r0}
//     - soft open to ANY m: τ = (r0 - m) · r1^{-1} mod p
//     - can never be hard opened (requires dlog_h C1).
//
// A hard commitment is binding for both opening flavours: producing two
// different soft/hard openings yields dlog_g(h). A soft commitment is
// equivocable but useless for claiming membership — exactly the asymmetry
// the ZK-EDB ownership / non-ownership proofs are built on.
#pragma once

#include <optional>

#include <vector>

#include "common/bytes.h"
#include "crypto/bignum.h"
#include "crypto/group.h"
#include "crypto/randsource.h"
#include "mercurial/equation.h"
#include "mercurial/message.h"

namespace desword::mercurial {

/// Public commitment key (the CRS of the scheme).
struct TmcPublicKey {
  Bytes g;  // group generator
  Bytes h;  // second base; dlog_g(h) is the trapdoor

  Bytes serialize() const;
  static TmcPublicKey deserialize(const Group& group, BytesView data);
};

/// Key pair; `trapdoor` is kept only by the CRS generator (the proxy) and
/// is needed exclusively by the zero-knowledge simulator / tests.
struct TmcKeyPair {
  TmcPublicKey pk;
  Bignum trapdoor;  // a with h = g^a
};

/// A commitment (hard and soft commitments are indistinguishable).
struct TmcCommitment {
  Bytes c0;
  Bytes c1;

  bool operator==(const TmcCommitment&) const = default;
  Bytes serialize() const;
  static TmcCommitment deserialize(const Group& group, BytesView data);
};

/// Private state retained by the committer of a hard commitment.
struct TmcHardDecommit {
  Bytes message;  // 16-byte committed message
  Bignum r0;
  Bignum r1;
};

/// Private state retained by the committer of a soft commitment.
struct TmcSoftDecommit {
  Bignum r0;
  Bignum r1;
};

/// Hard opening: proves "the committed message is m".
struct TmcOpening {
  Bytes message;
  Bignum r0;
  Bignum r1;

  Bytes serialize(const Group& group) const;
  static TmcOpening deserialize(const Group& group, BytesView data);
};

/// Soft opening ("tease"): proves "IF this commitment is hard, its message
/// is m" — soft commitments tease to anything.
struct TmcTease {
  Bytes message;
  Bignum tau;

  Bytes serialize(const Group& group) const;
  static TmcTease deserialize(const Group& group, BytesView data);
};

class TmcScheme {
 public:
  /// Generates a CRS over `group` (paper algorithm: KGen).
  static TmcKeyPair keygen(const GroupPtr& group);

  TmcScheme(GroupPtr group, TmcPublicKey pk);

  const TmcPublicKey& public_key() const { return pk_; }
  const Group& group() const { return *group_; }

  /// HCom: hard commitment to a 16-byte message. The overload taking a
  /// RandomSource draws the commitment randomizers from it (deterministic
  /// replay / parallel-build determinism); the default uses the CSPRNG.
  std::pair<TmcCommitment, TmcHardDecommit> hard_commit(BytesView msg) const;
  std::pair<TmcCommitment, TmcHardDecommit> hard_commit(
      BytesView msg, RandomSource& rng) const;

  /// HOpen: hard opening of a hard commitment.
  TmcOpening hard_open(const TmcHardDecommit& dec) const;

  /// SOpen on a hard commitment: tease to the committed message.
  TmcTease tease_hard(const TmcHardDecommit& dec) const;

  /// SCom: soft (equivocable) commitment.
  std::pair<TmcCommitment, TmcSoftDecommit> soft_commit() const;
  std::pair<TmcCommitment, TmcSoftDecommit> soft_commit(
      RandomSource& rng) const;

  /// SOpen on a soft commitment: tease to an arbitrary message.
  TmcTease tease_soft(const TmcSoftDecommit& dec, BytesView msg) const;

  /// HVer: verifies a hard opening. Never throws on bad input.
  bool verify_open(const TmcCommitment& com, const TmcOpening& op) const;

  /// SVer: verifies a tease. Never throws on bad input.
  bool verify_tease(const TmcCommitment& com, const TmcTease& tease) const;

  /// Equation-accumulator flavour of verify_open: structural checks, then
  /// appends `h^{r1} == C1` and `g^m · C1^{r0} == C0`. Returns false
  /// (appending nothing) on structural failure; the opening is valid iff
  /// this returns true AND every appended equation holds.
  bool open_equations(const TmcCommitment& com, const TmcOpening& op,
                      std::vector<EcEquation>& out) const;

  /// Equation-accumulator flavour of verify_tease (one equation).
  bool tease_equations(const TmcCommitment& com, const TmcTease& tease,
                       std::vector<EcEquation>& out) const;

  /// Resolves a term's element: the CRS base it names, or its payload.
  const Bytes& term_elem(const EcTerm& term) const;

  /// Evaluates one emitted equation exactly as verify_open/verify_tease
  /// would (term-by-term, unfolded). Throws CryptoError if a factor or the
  /// product is the group identity (the scalar verifiers treat that as a
  /// rejection).
  bool check_scalar(const EcEquation& eq) const;

  /// Zero-knowledge simulator: with the trapdoor, produce a *fake* hard
  /// commitment that can later be hard-opened to any message. Used by
  /// tests to validate the trapdoor property (and documents why `a` must
  /// stay with the CRS generator).
  std::pair<TmcCommitment, TmcSoftDecommit> fake_commit(
      const Bignum& trapdoor) const;
  TmcOpening fake_open(const TmcSoftDecommit& dec, const Bignum& trapdoor,
                       BytesView msg) const;

  /// Registers g and h as fixed bases with the group backend (no-op for
  /// backends without precomputation support). Idempotent.
  void precompute_fixed_bases() const;

 private:
  std::size_t scalar_len() const;

  GroupPtr group_;
  TmcPublicKey pk_;
};

}  // namespace desword::mercurial
