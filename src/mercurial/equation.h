// Verification equations as data.
//
// Scalar verification of a mercurial opening checks one or two product
// equations (∏ base^exponent == rhs) immediately. The batch-verification
// engine instead has the schemes EMIT those equations as plain structs so a
// BatchVerifier can fold many of them — across a whole proof chain, or
// across many proofs — into a single multi-exponentiation (see
// batch_verify.h). Terms reference the CRS bases (h, h̃-free: verification
// never uses h̃; S_i) symbolically so the fold can merge their exponents:
// h appears in every hard opening and S_i in every equation at position i,
// which is where most of the batching win comes from.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "crypto/bignum.h"

namespace desword::mercurial {

/// One base^exponent factor of a qTMC (strong-RSA) verification equation.
struct RsaTerm {
  enum class Kind : std::uint8_t {
    kGeneric,  // proof-supplied base carried in `base`
    kH,        // the CRS base h
    kS,        // the CRS base S_{pos}
  };

  Kind kind = Kind::kGeneric;
  std::uint32_t pos = 0;  // kS only
  Bignum base;            // kGeneric only
  Bignum exponent;        // always >= 0 (checked at emission)
};

/// Product equation ∏ lhs == rhs under the qTMC modulus N. Exponents are
/// integers over the hidden-order RSA group — they are never reduced.
struct RsaEquation {
  std::vector<RsaTerm> lhs;
  Bignum rhs;
};

/// One elem^scalar factor of a TMC (prime-order group) equation.
struct EcTerm {
  enum class Kind : std::uint8_t {
    kGeneric,  // proof-supplied element carried in `elem`
    kG,        // the CRS generator g
    kH,        // the CRS base h
  };

  Kind kind = Kind::kGeneric;
  Bytes elem;     // kGeneric only
  Bignum scalar;  // taken mod the group order
};

/// Product equation ∏ lhs == rhs in the TMC group.
struct EcEquation {
  std::vector<EcTerm> lhs;
  Bytes rhs;
};

}  // namespace desword::mercurial
