// Trapdoor q-Mercurial Commitment (qTMC) from the strong-RSA assumption.
//
// This plays the role of the paper's internal-node primitive [11]. The
// paper's implementation uses the pairing-based Libert–Yung scheme; offline
// we instantiate the *same interface and asymptotics* in the style of the
// paper's other cited ZK-EDB construction (Catalano–Fiore–Messina,
// EUROCRYPT 2008), which is RSA-based — see DESIGN.md §2/§5.2.
//
// Public key (CRS): RSA modulus N, generators g, h = g^a ∈ QR_N (trapdoor
// a), and q deterministic 136-bit primes e_1..e_q derived from a public
// seed. Derived values: P = ∏_j e_j, P_i = P / e_i, S_i = g^{P_i},
// h̃ = g^P.
//
//   Hard commit to (m_1..m_q):  C1 = h^{r1},
//                               C0 = h̃^z · ∏_i S_i^{m_i} · C1^{r0}
//     - hard open at i -> (m_i, τ=r0, Λ_i, r1) where
//         Λ_i = g^{(z·P + Σ_{j≠i} m_j·P_j)/e_i}   (exactly divisible)
//       check:  C1 = h^{r1}  and  Λ^{e_i} · S_i^{m_i} · C1^{τ} = C0
//     - soft open (tease) at i -> same without r1.
//   Soft commit:  C1 = g^{r1} (gcd(r1, P) = 1),  C0 = g^{r0}
//     - tease at any i to ANY m: pick τ ≡ (r0 − m·ρ_i)·r1^{-1} (mod e_i)
//       with ρ_i = P_i mod e_i, then
//         Λ = g^{(r0 − τ·r1 − m·ρ_i)/e_i} · U_i^{−m},  U_i = g^{P_i div e_i}
//     - can never be hard opened (requires dlog_h C1).
//
// Group elements live in the quotient group Z_N*/{±1}: every element the
// scheme emits (C0, C1, Λ) is the canonical representative min(x, N−x),
// verifiers structurally reject non-canonical proof elements, and the
// verification equations compare canonical representatives. The quotient
// removes the publicly-known order-2 element −1, which would otherwise
// break small-exponent batch verification (DESIGN.md §5.5); binding is
// unaffected, since a relation g^a = −g^b still yields g^{2(a−b)} = 1.
//
// Cost profile (matches the paper's Figure 4): qKGen / qHCom / qHOpen /
// qSOpen-of-hard grow linearly with q (exponent sizes are Θ(q·|e|));
// soft-commitment algorithms are constant in q (U_i values are cached per
// key); verification is constant in q.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/mutex.h"
#include "crypto/bignum.h"
#include "crypto/modexp.h"
#include "crypto/randsource.h"
#include "mercurial/equation.h"
#include "mercurial/message.h"

namespace desword::mercurial {

/// Serializable public key material (derived values are recomputed).
struct QtmcPublicKey {
  Bignum n;          // RSA modulus
  Bignum g;          // generator of (a large subgroup of) QR_N
  Bignum h;          // g^a, a = trapdoor
  Bytes prime_seed;  // seed deriving e_1..e_q
  std::uint32_t q = 0;  // vector arity

  Bytes serialize() const;
  static QtmcPublicKey deserialize(BytesView data);
};

struct QtmcKeyPair {
  QtmcPublicKey pk;
  Bignum trapdoor;  // a; retained only by the CRS generator / simulator
};

struct QtmcCommitment {
  Bignum c0;
  Bignum c1;

  bool operator==(const QtmcCommitment&) const = default;
  Bytes serialize(const Bignum& modulus) const;
  static QtmcCommitment deserialize(const Bignum& modulus, BytesView data);
};

struct QtmcHardDecommit {
  std::vector<Bytes> messages;  // exactly q 16-byte messages
  Bignum z;
  Bignum r0;
  Bignum r1;
};

struct QtmcSoftDecommit {
  Bignum r0;
  Bignum r1;
};

/// Hard opening at one position.
struct QtmcOpening {
  std::uint32_t pos = 0;
  Bytes message;
  Bignum tau;
  Bignum lambda;
  Bignum r1;

  Bytes serialize(const Bignum& modulus) const;
  static QtmcOpening deserialize(const Bignum& modulus, BytesView data);
};

/// Soft opening (tease) at one position.
struct QtmcTease {
  std::uint32_t pos = 0;
  Bytes message;
  Bignum tau;
  Bignum lambda;

  Bytes serialize(const Bignum& modulus) const;
  static QtmcTease deserialize(const Bignum& modulus, BytesView data);
};

class QtmcScheme {
 public:
  /// qKGen: fresh CRS with arity `q` over a new RSA modulus of `rsa_bits`.
  static QtmcKeyPair keygen(std::uint32_t q, int rsa_bits);

  /// Builds the scheme from a public key, deriving the primes and the
  /// S_i / h̃ tables (the dominant keygen cost; linear in q via a
  /// divide-and-conquer power tree).
  explicit QtmcScheme(QtmcPublicKey pk);

  const QtmcPublicKey& public_key() const { return pk_; }
  std::uint32_t arity() const { return pk_.q; }

  /// qHCom. `messages.size()` must be <= q; missing tail positions commit
  /// the null message. The RandomSource overload draws the randomizers
  /// from `rng` (deterministic replay); the default uses the CSPRNG.
  std::pair<QtmcCommitment, QtmcHardDecommit> hard_commit(
      const std::vector<Bytes>& messages) const;
  std::pair<QtmcCommitment, QtmcHardDecommit> hard_commit(
      const std::vector<Bytes>& messages, RandomSource& rng) const;

  /// qHOpen at `pos`.
  QtmcOpening hard_open(const QtmcHardDecommit& dec, std::uint32_t pos) const;

  /// qSOpen of a hard commitment at `pos` (teases to the committed value).
  QtmcTease tease_hard(const QtmcHardDecommit& dec, std::uint32_t pos) const;

  /// qSCom.
  std::pair<QtmcCommitment, QtmcSoftDecommit> soft_commit() const;
  std::pair<QtmcCommitment, QtmcSoftDecommit> soft_commit(
      RandomSource& rng) const;

  /// qSOpen of a soft commitment: tease position `pos` to arbitrary `msg`.
  QtmcTease tease_soft(const QtmcSoftDecommit& dec, std::uint32_t pos,
                       BytesView msg) const;

  /// Verifies a hard opening. Never throws on bad input. Equivalent to
  /// emitting open_equations and checking each equation scalar-wise.
  bool verify_open(const QtmcCommitment& com, const QtmcOpening& op) const;

  /// Verifies a tease. Never throws on bad input.
  bool verify_tease(const QtmcCommitment& com, const QtmcTease& tease) const;

  /// Equation-accumulator flavour of verify_open: runs the structural
  /// checks (position/message/exponent ranges, elements canonical in
  /// [1, (N−1)/2]) and, when they pass, appends the two product equations
  /// `h^{r1} == C1` and `Λ^{e_pos}·S_pos^m·C1^τ == C0` — both compared in
  /// Z_N*/{±1} — to `out`. Returns false (appending nothing) on
  /// structural failure. Coprimality of the proof-supplied
  /// elements with N is NOT checked here — consumers enforce it in
  /// aggregate via elements_coprime (one gcd per opening in the scalar
  /// verifiers, one per fold in BatchVerifier). The opening is valid iff
  /// this returns true AND elements_coprime holds AND every appended
  /// equation holds.
  bool open_equations(const QtmcCommitment& com, const QtmcOpening& op,
                      std::vector<RsaEquation>& out) const;

  /// Equation-accumulator flavour of verify_tease (one equation).
  bool tease_equations(const QtmcCommitment& com, const QtmcTease& tease,
                       std::vector<RsaEquation>& out) const;

  /// Resolves a term's base: the CRS base it names, or its generic payload.
  const Bignum& term_base(const RsaTerm& term) const;

  /// Evaluates one term exactly as the scalar verifier would (CRS bases go
  /// through the fixed-base tables when built).
  Bignum eval_term(const RsaTerm& term) const;

  /// Evaluates one emitted equation exactly as verify_open/verify_tease
  /// would (term-by-term, unfolded, compared in Z_N*/{±1}). May throw on
  /// internal crypto errors; never on well-formed emitted equations.
  bool check_scalar(const RsaEquation& eq) const;

  /// Canonical representative of `x` in Z_N*/{±1}: min(x, N−x) for
  /// x ∈ [0, N). All emitted elements are canonical and all verification
  /// equations (scalar and folded) compare canonical representatives.
  Bignum canonical(const Bignum& x) const;

  /// Folds every untrusted element of eqs[begin..end) — generic term bases
  /// and equation RHS values — into `acc` (mod N). Together with
  /// product_coprime this enforces gcd(x, N) = 1 for all of them at the
  /// cost of ONE gcd: gcd(∏ x mod N, N) = 1 iff every factor is coprime
  /// (any prime divisor of N dividing some x divides the product). A gcd
  /// is ~50× a modular multiplication, so verifiers aggregate the check —
  /// per opening in verify_open/verify_tease, per fold in BatchVerifier —
  /// instead of paying it per element.
  void accumulate_elements(const std::vector<RsaEquation>& eqs,
                           std::size_t begin, std::size_t end,
                           Bignum& acc) const;

  /// gcd(acc, N) == 1 — the single-gcd tail of accumulate_elements.
  bool product_coprime(const Bignum& acc) const;

  /// accumulate_elements + product_coprime over one contiguous range.
  bool elements_coprime(const std::vector<RsaEquation>& eqs,
                        std::size_t begin, std::size_t end) const;

  /// The shared Montgomery/multi-exponentiation context for the modulus N.
  const ModExpContext& modexp_context() const { return *mexp_; }

  /// Simulator (requires trapdoor): fake hard-lookalike commitment that can
  /// later be hard-opened to arbitrary messages. Test/analysis only.
  std::pair<QtmcCommitment, QtmcSoftDecommit> fake_commit(
      const Bignum& trapdoor) const;
  QtmcOpening fake_open(const QtmcSoftDecommit& dec, const Bignum& trapdoor,
                        std::uint32_t pos, BytesView msg) const;

  /// Warms the per-position U_i cache (used by benchmarks to measure the
  /// steady-state constant cost of soft openings).
  void precompute_soft_bases() const;

  /// Builds fixed-base windowed tables for the CRS bases — g (sized for
  /// the full λ-exponent width), h, h̃, and optionally every S_i — turning
  /// each fixed-base exponentiation into ~len/4 Montgomery multiplications
  /// with no squarings. One-time cost: a few plain exponentiations' worth
  /// of work; memory: ~(P_bits/4)·16 residues for g plus ~512 residues per
  /// S_i (≈2.5 MiB + q·128 KiB at RSA-2048, q=16). Idempotent and safe to
  /// race; commits/opens/verifies pick the tables up once built.
  ///
  /// Tables live in a process-wide registry keyed by the public key, so
  /// every QtmcScheme instance built from the same CRS (proxy sessions,
  /// participants, cached EdbCrs copies) shares ONE table set — the
  /// Montgomery representation depends only on the modulus. The registry
  /// is a small LRU (peers presenting many distinct CRSs cannot grow it
  /// without bound; an evicted set stays alive while instances hold it),
  /// and concurrent builders only serialize per CRS, never across
  /// unrelated CRSs.
  void precompute_fixed_bases(bool position_bases = true) const;

  /// Identity of the adopted shared table set (nullptr until
  /// precompute_fixed_bases ran). Diagnostics/tests: equal pointers mean
  /// two instances share the same registry entry.
  const void* fixed_base_tables_id() const;

  /// Serialized size of the modulus in bytes (element width on the wire).
  std::size_t element_len() const { return n_len_; }

 private:
  Bignum pow_g(const Bignum& exponent) const;
  Bignum pow_g_signed(const Bignum& exponent) const;
  Bignum pow_h(const Bignum& exponent) const;
  Bignum pow_h_tilde(const Bignum& exponent) const;
  Bignum pow_s(std::uint32_t pos, const Bignum& exponent) const;
  const Bignum& u_base(std::uint32_t pos) const;
  // Lock-free fast-path readers for the adopted fixed-base tables; nullptr
  // until published. Analysis opt-out is sound: each pointer is written
  // exactly once, under fb_mu_, BEFORE the release store of fb_*_ready_;
  // the acquire load in these accessors orders the pointer read after that
  // publication, and the pointed-to tables are immutable from then on.
  // Every unlocked fb_* access in the scheme funnels through these four.
  const ModExpContext::FixedBaseTable* fb_g_table() const
      DESWORD_NO_THREAD_SAFETY_ANALYSIS;
  const ModExpContext::FixedBaseTable* fb_h_table() const
      DESWORD_NO_THREAD_SAFETY_ANALYSIS;
  const ModExpContext::FixedBaseTable* fb_h_tilde_table() const
      DESWORD_NO_THREAD_SAFETY_ANALYSIS;
  const std::vector<ModExpContext::FixedBaseTable>* fb_s_tables() const
      DESWORD_NO_THREAD_SAFETY_ANALYSIS;
  Bignum lambda_exponent(const QtmcHardDecommit& dec, std::uint32_t pos) const;
  /// Structural checks + emission of the main equation
  /// Λ^{e_pos}·S_pos^m·C1^τ == C0 shared by hard and soft openings.
  bool main_equation(const QtmcCommitment& com, std::uint32_t pos,
                     BytesView msg, const Bignum& tau, const Bignum& lambda,
                     std::vector<RsaEquation>& out) const;
  /// x ∈ [1, (N−1)/2]: a nonzero canonical representative of Z_N*/{±1}.
  bool element_canonical(const Bignum& x) const;

  QtmcPublicKey pk_;
  std::size_t n_len_ = 0;
  Bignum n_half_;  // (N−1)/2: canonical representatives are ≤ this
  std::unique_ptr<ModExpContext> mexp_;  // Montgomery context for N
  std::vector<Bignum> e_;      // primes e_1..e_q
  Bignum prod_all_;            // P = ∏ e_j
  std::vector<Bignum> s_;      // S_i = g^{P/e_i}
  Bignum h_tilde_;             // g^P
  std::vector<Bignum> rho_;    // ρ_i = (P/e_i) mod e_i

  mutable Mutex u_mutex_;
  // U_i = g^{(P/e_i) div e_i}
  mutable std::vector<std::optional<Bignum>> u_ DESWORD_GUARDED_BY(u_mutex_);

  // Fixed-base tables (precompute_fixed_bases), adopted from the process-
  // wide per-public-key registry. Written once under fb_mu_, then
  // read-only; fb_*_ready_ gate the lock-free fast paths (the fb_*_table()
  // accessors above) with acquire loads.
  mutable Mutex fb_mu_;
  mutable std::atomic<bool> fb_ready_{false};
  mutable std::atomic<bool> fb_pos_ready_{false};
  mutable std::shared_ptr<const ModExpContext::FixedBaseTable> fb_g_
      DESWORD_GUARDED_BY(fb_mu_);
  mutable std::shared_ptr<const ModExpContext::FixedBaseTable> fb_h_
      DESWORD_GUARDED_BY(fb_mu_);
  mutable std::shared_ptr<const ModExpContext::FixedBaseTable> fb_h_tilde_
      DESWORD_GUARDED_BY(fb_mu_);
  mutable std::shared_ptr<const std::vector<ModExpContext::FixedBaseTable>>
      fb_s_ DESWORD_GUARDED_BY(fb_mu_);
};

}  // namespace desword::mercurial
