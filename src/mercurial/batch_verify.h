// Randomized batch verification of mercurial proof chains.
//
// Folds the verification equations of many qTMC/TMC openings into one
// product equation per group via the small-exponent batching technique
// (Bellare–Garay–Rabin, EUROCRYPT 1998): each equation ∏ b^e == rhs is
// raised to an independent 128-bit multiplier r_i and the results are
// multiplied together. On the RSA side both the individual equations and
// the fold are compared in the quotient group Z_N*/{±1} (canonical
// representatives min(x, N−x)); plain Z_N* contains the publicly known
// order-2 element −1, whose sign-flip defects small-exponent batching
// cannot catch. The fold holds for honest proofs by construction; a
// cheating prover passes with probability ≤ 2^-128 per batch (see
// DESIGN.md §5.5). Exponents of repeated bases — h in every
// hard opening, S_i at position i, the commitment elements — merge, so the
// whole batch costs one multi-exponentiation (crypto/modexp.h Pippenger /
// Straus, Group::multi_exp) instead of 3–4 full exponentiations per
// opening.
//
// Multipliers are derived deterministically from a transcript hash of all
// accumulated equations (Fiat–Shamir style), so verification stays
// reproducible and a prover committed to its proofs cannot steer them.
//
// When the folded equation fails, the verifier bisects: it re-folds halves
// of the unit set until the failing units are isolated, then re-checks each
// isolated unit with the exact scalar equations. The final accept/reject
// decision per unit is therefore byte-identical to scalar verification —
// randomization can only cost extra work on failure, never flip a verdict
// on the units that are re-checked, and a fold that spuriously failed (it
// cannot, for honest proofs) would still converge to the scalar answer.
//
// RSA-side coprimality with N is likewise aggregated: one gcd over the
// product of a fold's proof-supplied elements replaces one gcd per element
// (see QtmcScheme::elements_coprime), with bisection leaves re-applying the
// per-unit check so verdicts stay exact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mercurial/equation.h"
#include "mercurial/qtmc.h"
#include "mercurial/tmc.h"

namespace desword::mercurial {

/// Accumulates verification equations from many openings ("units") and
/// checks them all with O(1) folded product equations. A unit is the
/// granularity of the verdict — typically one proof chain, or one proof in
/// a many-proof batch. Not thread safe; build one per verification task.
class BatchVerifier {
 public:
  struct Result {
    bool all_ok = false;
    std::vector<bool> unit_ok;  // one verdict per begin_unit() call
  };

  /// `tmc` may be null when no leaf (TMC) equations will be added. Both
  /// schemes must outlive the verifier.
  explicit BatchVerifier(const QtmcScheme& qtmc, const TmcScheme* tmc = nullptr);

  /// Starts a new unit; subsequent add_* calls accumulate into it.
  /// Returns the unit's index into Result::unit_ok.
  std::size_t begin_unit();

  /// Accumulate a qTMC hard opening / tease into the current unit. Returns
  /// false — and marks the unit failed — when the structural checks reject;
  /// the equations are then not accumulated (matching the scalar verifier,
  /// which never evaluates them either).
  bool add_open(const QtmcCommitment& com, const QtmcOpening& op);
  bool add_tease(const QtmcCommitment& com, const QtmcTease& tease);

  /// Accumulate a TMC (leaf) opening / tease. Requires a non-null `tmc`.
  bool add_leaf_open(const TmcCommitment& com, const TmcOpening& op);
  bool add_leaf_tease(const TmcCommitment& com, const TmcTease& tease);

  /// Marks the current unit rejected because of a caller-side check outside
  /// the equations (e.g. a chain digest mismatch). Its equations are
  /// excluded from the fold so they cannot trigger needless bisection.
  void fail_unit();

  std::size_t units() const { return units_.size(); }

  /// Folds and checks everything accumulated so far. On fold failure,
  /// bisects to per-unit verdicts (scalar-exact at the leaves). Idempotent:
  /// multipliers are transcript-derived, so repeated calls agree.
  Result verify() const;

 private:
  struct UnitRange {
    std::size_t rsa_begin = 0, rsa_end = 0;
    std::size_t ec_begin = 0, ec_end = 0;
    bool failed = false;  // structural rejection at add_* time
  };

  bool fold(const std::vector<std::size_t>& unit_idxs,
            const std::vector<Bignum>& rsa_r,
            const std::vector<Bignum>& ec_r) const;
  bool fold_rsa(const std::vector<std::size_t>& unit_idxs,
                const std::vector<Bignum>& rsa_r) const;
  bool fold_ec(const std::vector<std::size_t>& unit_idxs,
               const std::vector<Bignum>& ec_r) const;
  bool scalar_unit(std::size_t unit) const;
  void derive_multipliers(std::vector<Bignum>& rsa_r,
                          std::vector<Bignum>& ec_r) const;

  const QtmcScheme* qtmc_;
  const TmcScheme* tmc_;
  std::vector<RsaEquation> rsa_eqs_;
  std::vector<EcEquation> ec_eqs_;
  std::vector<UnitRange> units_;
};

}  // namespace desword::mercurial
