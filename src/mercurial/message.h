// Shared message-domain rules for the mercurial commitment schemes.
//
// Both TMC and qTMC commit to fixed-width 128-bit messages (digests of
// RFID-traces or of child commitments). The qTMC position-binding argument
// requires every message to be strictly smaller than each 136-bit prime
// e_i, which 128-bit messages satisfy by construction.
#pragma once

#include "common/bytes.h"
#include "common/error.h"
#include "crypto/bignum.h"

namespace desword::mercurial {

/// Width of committed messages in bits / bytes.
inline constexpr int kMessageBits = 128;
inline constexpr std::size_t kMessageBytes = 16;

/// Bit length of the qTMC primes e_i (must exceed kMessageBits).
inline constexpr int kPrimeBits = 136;

/// Validates width and converts a message to its integer form.
inline Bignum message_to_scalar(BytesView msg) {
  if (msg.size() != kMessageBytes) {
    throw CryptoError("mercurial message must be exactly 16 bytes");
  }
  return Bignum::from_bytes(msg);
}

/// The designated "absent value" message (all zero bytes). ZK-EDB leaves
/// tease to this message to assert non-membership.
inline Bytes null_message() { return Bytes(kMessageBytes, 0); }

}  // namespace desword::mercurial
