#include "mercurial/qtmc.h"

#include <list>
#include <map>
#include <mutex>  // desword-lint: allow(raw-mutex) — std::once_flag/call_once

#include "common/error.h"
#include "common/rng.h"
#include "common/serial.h"
#include "crypto/hash.h"
#include "crypto/primes.h"
#include "crypto/rsa.h"

namespace desword::mercurial {

namespace {

constexpr int kRandomizerBits = 256;
// Sanity cap on attacker-supplied exponents (honest values are ~256 bits;
// the cap only bounds verification work, not security).
constexpr int kMaxExponentBits = 1024;

Bignum product_range(const std::vector<Bignum>& primes, std::size_t lo,
                     std::size_t hi) {
  if (hi - lo == 1) return primes[lo];
  const std::size_t mid = lo + (hi - lo) / 2;
  return product_range(primes, lo, mid) * product_range(primes, mid, hi);
}

// Divide-and-conquer "all-but-one" power tree: out[i] = base^{∏_{j≠i} e_j}
// within [lo, hi), assuming `base` already carries the primes outside the
// range. Θ(q log q) modular squarings total instead of Θ(q²).
void fill_powers(const Bignum& base, const std::vector<Bignum>& primes,
                 std::size_t lo, std::size_t hi, const ModExpContext& mexp,
                 std::vector<Bignum>& out) {
  if (hi - lo == 1) {
    out[lo] = base;
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  const Bignum prod_left = product_range(primes, lo, mid);
  const Bignum prod_right = product_range(primes, mid, hi);
  fill_powers(mexp.exp(base, prod_right), primes, lo, mid, mexp, out);
  fill_powers(mexp.exp(base, prod_left), primes, mid, hi, mexp, out);
}

// Process-wide registry of fixed-base table sets, keyed by the hash of the
// serialized public key. Fixed-base tables depend only on the modulus and
// the base, so every QtmcScheme instance built from the same CRS can adopt
// one shared, immutable set instead of rebuilding megabytes of
// precomputation per instance (proxy + participants all hold the same CRS).
//
// The registry is a bounded LRU: a peer able to present many distinct CRS
// public keys must not drive unbounded memory growth (each set is several
// MiB). Evicting an entry only drops the registry's reference — instances
// that already adopted the set keep it alive via shared_ptr, and a
// re-presented CRS simply rebuilds. The registry mutex guards only the
// map itself; table builds run outside it, deduplicated per entry by
// once_flags, so one slow build for CRS A never blocks precompute for an
// unrelated CRS B.
struct FixedBaseSet {
  std::shared_ptr<const ModExpContext::FixedBaseTable> g;
  std::shared_ptr<const ModExpContext::FixedBaseTable> h;
  std::shared_ptr<const ModExpContext::FixedBaseTable> h_tilde;
  std::shared_ptr<const std::vector<ModExpContext::FixedBaseTable>> s;
};

struct FixedBaseEntry {
  std::once_flag base_once;
  std::once_flag pos_once;
  FixedBaseSet set;
};

constexpr std::size_t kFixedBaseRegistryCap = 8;

struct FixedBaseRegistry {
  Mutex mu;
  std::map<Bytes, std::shared_ptr<FixedBaseEntry>> entries
      DESWORD_GUARDED_BY(mu);
  std::list<Bytes> lru DESWORD_GUARDED_BY(mu);  // front = most recently used
};

FixedBaseRegistry& fixed_base_registry() {
  static auto* reg = new FixedBaseRegistry();
  return *reg;
}

// Looks up (or inserts) the entry for `key`, evicting the least recently
// used entries beyond the cap. O(cap) list scans are fine at cap = 8.
std::shared_ptr<FixedBaseEntry> fixed_base_entry(const Bytes& key) {
  FixedBaseRegistry& reg = fixed_base_registry();
  MutexLock lock(reg.mu);
  const auto it = reg.entries.find(key);
  if (it != reg.entries.end()) {
    reg.lru.remove(key);
    reg.lru.push_front(key);
    return it->second;
  }
  while (reg.entries.size() >= kFixedBaseRegistryCap && !reg.lru.empty()) {
    reg.entries.erase(reg.lru.back());
    reg.lru.pop_back();
  }
  auto entry = std::make_shared<FixedBaseEntry>();
  reg.entries.emplace(key, entry);
  reg.lru.push_front(key);
  return entry;
}

}  // namespace

Bytes QtmcPublicKey::serialize() const {
  BinaryWriter w;
  w.bytes(n.to_bytes());
  w.bytes(g.to_bytes());
  w.bytes(h.to_bytes());
  w.bytes(prime_seed);
  w.u32(q);
  return w.take();
}

QtmcPublicKey QtmcPublicKey::deserialize(BytesView data) {
  BinaryReader r(data);
  QtmcPublicKey pk;
  pk.n = Bignum::from_bytes(r.bytes());
  pk.g = Bignum::from_bytes(r.bytes());
  pk.h = Bignum::from_bytes(r.bytes());
  pk.prime_seed = r.bytes();
  pk.q = r.u32();
  r.expect_done();
  if (pk.q == 0 || pk.q > 4096) {
    throw SerializationError("qTMC arity out of range");
  }
  if (pk.n.bits() < 256 || pk.g.is_zero() || pk.g >= pk.n ||
      pk.h.is_zero() || pk.h >= pk.n) {
    throw SerializationError("malformed qTMC public key");
  }
  return pk;
}

Bytes QtmcCommitment::serialize(const Bignum& modulus) const {
  const std::size_t len = static_cast<std::size_t>((modulus.bits() + 7) / 8);
  BinaryWriter w;
  w.bytes(c0.to_bytes_padded(len));
  w.bytes(c1.to_bytes_padded(len));
  return w.take();
}

QtmcCommitment QtmcCommitment::deserialize(const Bignum& modulus,
                                           BytesView data) {
  BinaryReader r(data);
  QtmcCommitment com{Bignum::from_bytes(r.bytes()),
                     Bignum::from_bytes(r.bytes())};
  r.expect_done();
  if (com.c0.is_zero() || com.c0 >= modulus || com.c1.is_zero() ||
      com.c1 >= modulus) {
    throw SerializationError("qTMC commitment element out of range");
  }
  return com;
}

Bytes QtmcOpening::serialize(const Bignum& modulus) const {
  const std::size_t len = static_cast<std::size_t>((modulus.bits() + 7) / 8);
  BinaryWriter w;
  w.varint(pos);
  w.bytes(message);
  w.bytes(tau.to_bytes());
  w.bytes(lambda.to_bytes_padded(len));
  w.bytes(r1.to_bytes());
  return w.take();
}

QtmcOpening QtmcOpening::deserialize(const Bignum& modulus, BytesView data) {
  BinaryReader r(data);
  QtmcOpening op;
  op.pos = static_cast<std::uint32_t>(r.varint());
  op.message = r.bytes();
  op.tau = Bignum::from_bytes(r.bytes());
  op.lambda = Bignum::from_bytes(r.bytes());
  op.r1 = Bignum::from_bytes(r.bytes());
  r.expect_done();
  if (op.message.size() != kMessageBytes || op.lambda >= modulus) {
    throw SerializationError("malformed qTMC opening");
  }
  return op;
}

Bytes QtmcTease::serialize(const Bignum& modulus) const {
  const std::size_t len = static_cast<std::size_t>((modulus.bits() + 7) / 8);
  BinaryWriter w;
  w.varint(pos);
  w.bytes(message);
  w.bytes(tau.to_bytes());
  w.bytes(lambda.to_bytes_padded(len));
  return w.take();
}

QtmcTease QtmcTease::deserialize(const Bignum& modulus, BytesView data) {
  BinaryReader r(data);
  QtmcTease t;
  t.pos = static_cast<std::uint32_t>(r.varint());
  t.message = r.bytes();
  t.tau = Bignum::from_bytes(r.bytes());
  t.lambda = Bignum::from_bytes(r.bytes());
  r.expect_done();
  if (t.message.size() != kMessageBytes || t.lambda >= modulus) {
    throw SerializationError("malformed qTMC tease");
  }
  return t;
}

QtmcKeyPair QtmcScheme::keygen(std::uint32_t q, int rsa_bits) {
  if (q == 0 || q > 4096) throw CryptoError("qTMC arity out of range");
  const RsaModulus mod = generate_rsa_modulus(rsa_bits);
  QtmcPublicKey pk;
  pk.n = mod.n;
  pk.g = random_quadratic_residue(pk.n);
  Bignum a = Bignum::rand_bits(kRandomizerBits);
  pk.h = Bignum::mod_exp(pk.g, a, pk.n);
  pk.prime_seed = random_bytes(32);
  pk.q = q;
  return QtmcKeyPair{std::move(pk), std::move(a)};
}

QtmcScheme::QtmcScheme(QtmcPublicKey pk) : pk_(std::move(pk)) {
  n_len_ = static_cast<std::size_t>((pk_.n.bits() + 7) / 8);
  n_half_ = (pk_.n - Bignum(1)).divided_by(Bignum(2));
  mexp_ = std::make_unique<ModExpContext>(pk_.n);
  e_ = derive_primes(pk_.prime_seed, pk_.q, kPrimeBits);
  prod_all_ = product_range(e_, 0, e_.size());
  s_.resize(pk_.q);
  fill_powers(pk_.g.mod(pk_.n), e_, 0, e_.size(), *mexp_, s_);
  // h̃ = g^P = S_0^{e_0} (cheap: one small exponentiation).
  h_tilde_ = mexp_->exp(s_[0], e_[0]);
  rho_.reserve(pk_.q);
  for (std::uint32_t i = 0; i < pk_.q; ++i) {
    const Bignum p_i = prod_all_.divided_by(e_[i]);
    rho_.push_back(p_i.mod(e_[i]));
  }
  u_.resize(pk_.q);
}

std::pair<QtmcCommitment, QtmcHardDecommit> QtmcScheme::hard_commit(
    const std::vector<Bytes>& messages) const {
  return hard_commit(messages, system_random());
}

std::pair<QtmcCommitment, QtmcHardDecommit> QtmcScheme::hard_commit(
    const std::vector<Bytes>& messages, RandomSource& rng) const {
  if (messages.size() > pk_.q) {
    throw CryptoError("qTMC: more messages than arity");
  }
  QtmcHardDecommit dec;
  dec.messages = messages;
  dec.messages.resize(pk_.q, null_message());
  dec.z = rng.rand_bits(kRandomizerBits);
  dec.r0 = rng.rand_bits(kRandomizerBits);
  dec.r1 = rng.rand_bits(kRandomizerBits);

  const Bignum c1 = canonical(pow_h(dec.r1));
  Bignum acc = pow_h_tilde(dec.z);
  // Group equal messages: ∏_{i∈I} S_i^m = (∏_{i∈I} S_i)^m. ZK-EDB nodes
  // commit the same soft-backing digest at most positions, so this turns
  // q exponentiations into one per distinct message. Messages unique to a
  // single position go through the per-position fixed-base table instead
  // (when built), which beats a plain exponentiation of the lone base.
  struct Grouped {
    Bignum base;
    std::uint32_t first_pos = 0;
    std::uint32_t count = 0;
  };
  std::map<Bytes, Grouped> base_by_message;
  for (std::uint32_t i = 0; i < pk_.q; ++i) {
    const Bytes& m = dec.messages[i];
    if (message_to_scalar(m).is_zero()) continue;  // S_i^0 = 1
    const auto it = base_by_message.find(m);
    if (it == base_by_message.end()) {
      base_by_message.emplace(m, Grouped{s_[i], i, 1});
    } else {
      it->second.base = Bignum::mod_mul(it->second.base, s_[i], pk_.n);
      ++it->second.count;
    }
  }
  for (const auto& [m, group] : base_by_message) {
    const Bignum scalar = message_to_scalar(m);
    const Bignum factor = group.count == 1 ? pow_s(group.first_pos, scalar)
                                           : mexp_->exp(group.base, scalar);
    acc = Bignum::mod_mul(acc, factor, pk_.n);
  }
  Bignum c0 = canonical(Bignum::mod_mul(acc, mexp_->exp(c1, dec.r0), pk_.n));
  return {QtmcCommitment{std::move(c0), c1}, std::move(dec)};
}

Bignum QtmcScheme::lambda_exponent(const QtmcHardDecommit& dec,
                                   std::uint32_t pos) const {
  // (z·P + Σ_{j≠pos} m_j·P_j) / e_pos  =  z·P_pos + Σ_{j≠pos} m_j·(P_pos/e_j)
  const Bignum p_pos = prod_all_.divided_by(e_[pos]);
  Bignum exp = dec.z * p_pos;
  for (std::uint32_t j = 0; j < pk_.q; ++j) {
    if (j == pos) continue;
    const Bignum m = message_to_scalar(dec.messages[j]);
    if (m.is_zero()) continue;
    exp += m * p_pos.divided_by(e_[j]);
  }
  return exp;
}

QtmcOpening QtmcScheme::hard_open(const QtmcHardDecommit& dec,
                                  std::uint32_t pos) const {
  if (pos >= pk_.q || dec.messages.size() != pk_.q) {
    throw CryptoError("qTMC hard_open: bad position or decommitment");
  }
  const Bignum lambda = canonical(pow_g(lambda_exponent(dec, pos)));
  return QtmcOpening{pos, dec.messages[pos], dec.r0, lambda, dec.r1};
}

QtmcTease QtmcScheme::tease_hard(const QtmcHardDecommit& dec,
                                 std::uint32_t pos) const {
  if (pos >= pk_.q || dec.messages.size() != pk_.q) {
    throw CryptoError("qTMC tease_hard: bad position or decommitment");
  }
  const Bignum lambda = canonical(pow_g(lambda_exponent(dec, pos)));
  return QtmcTease{pos, dec.messages[pos], dec.r0, lambda};
}

std::pair<QtmcCommitment, QtmcSoftDecommit> QtmcScheme::soft_commit() const {
  return soft_commit(system_random());
}

std::pair<QtmcCommitment, QtmcSoftDecommit> QtmcScheme::soft_commit(
    RandomSource& rng) const {
  Bignum r0 = rng.rand_bits(kRandomizerBits);
  Bignum r1 = rng.rand_bits(kRandomizerBits);
  // Teasing needs r1 invertible modulo every e_i: gcd(r1, P) must be 1.
  // Reduce P mod r1 first so the gcd runs on 256-bit operands and the
  // whole operation stays constant in q (Figure 4(b) behaviour).
  while (!Bignum::gcd(r1, prod_all_.mod(r1)).is_one()) {
    r1 = rng.rand_bits(kRandomizerBits);
  }
  QtmcCommitment com{canonical(pow_g(r0)), canonical(pow_g(r1))};
  return {std::move(com), QtmcSoftDecommit{std::move(r0), std::move(r1)}};
}

const Bignum& QtmcScheme::u_base(std::uint32_t pos) const {
  MutexLock lock(u_mutex_);
  if (!u_[pos].has_value()) {
    // U_pos = g^{(P/e_pos) div e_pos}; one-time Θ(q·|e|)-bit exponentiation,
    // cached so steady-state soft openings stay constant time.
    const Bignum p_pos = prod_all_.divided_by(e_[pos]);
    const Bignum quot = (p_pos - rho_[pos]).divided_by(e_[pos]);
    u_[pos] = pow_g(quot);
  }
  return *u_[pos];
}

void QtmcScheme::precompute_soft_bases() const {
  for (std::uint32_t i = 0; i < pk_.q; ++i) (void)u_base(i);
}

void QtmcScheme::precompute_fixed_bases(bool position_bases) const {
  MutexLock lock(fb_mu_);
  if (fb_ready_.load(std::memory_order_acquire) &&
      (!position_bases || fb_pos_ready_.load(std::memory_order_acquire))) {
    return;
  }
  // Builds run outside the registry lock: the per-entry once_flags dedupe
  // concurrent builders of the SAME CRS (later arrivals block until the
  // tables exist, instead of duplicating megabytes of work), while
  // unrelated CRSs build in parallel.
  const std::shared_ptr<FixedBaseEntry> entry =
      fixed_base_entry(sha256(pk_.serialize()));
  if (!fb_ready_.load(std::memory_order_acquire)) {
    std::call_once(entry->base_once, [&] {
      // λ exponents reach z·P + Σ m_j·P_j < 2^{P_bits + kRandomizerBits + 8};
      // anything wider (hostile input) falls back to plain modexp inside
      // ModExpContext::exp, so the cap is a fast-path bound, not a limit.
      const int g_bits = prod_all_.bits() + kRandomizerBits + 8;
      entry->set.g = std::make_shared<const ModExpContext::FixedBaseTable>(
          mexp_->precompute(pk_.g.mod(pk_.n), g_bits));
      entry->set.h = std::make_shared<const ModExpContext::FixedBaseTable>(
          mexp_->precompute(pk_.h.mod(pk_.n), kMaxExponentBits));
      entry->set.h_tilde = std::make_shared<const ModExpContext::FixedBaseTable>(
          mexp_->precompute(h_tilde_, kRandomizerBits));
    });
    fb_g_ = entry->set.g;
    fb_h_ = entry->set.h;
    fb_h_tilde_ = entry->set.h_tilde;
    fb_ready_.store(true, std::memory_order_release);
  }
  if (position_bases && !fb_pos_ready_.load(std::memory_order_acquire)) {
    std::call_once(entry->pos_once, [&] {
      std::vector<ModExpContext::FixedBaseTable> tables;
      tables.reserve(pk_.q);
      for (std::uint32_t i = 0; i < pk_.q; ++i) {
        // Message scalars are kMessageBytes wide (128 bits).
        tables.push_back(
            mexp_->precompute(s_[i], static_cast<int>(kMessageBytes) * 8));
      }
      entry->set.s =
          std::make_shared<const std::vector<ModExpContext::FixedBaseTable>>(
              std::move(tables));
    });
    fb_s_ = entry->set.s;
    fb_pos_ready_.store(true, std::memory_order_release);
  }
}

const void* QtmcScheme::fixed_base_tables_id() const {
  MutexLock lock(fb_mu_);
  return fb_g_.get();
}

// See the declarations in qtmc.h for why these four accessors may read the
// fb_* pointers without holding fb_mu_ (write-once release/acquire
// publication gated by fb_*_ready_).
const ModExpContext::FixedBaseTable* QtmcScheme::fb_g_table() const {
  if (!fb_ready_.load(std::memory_order_acquire)) return nullptr;
  return fb_g_.get();
}

const ModExpContext::FixedBaseTable* QtmcScheme::fb_h_table() const {
  if (!fb_ready_.load(std::memory_order_acquire)) return nullptr;
  return fb_h_.get();
}

const ModExpContext::FixedBaseTable* QtmcScheme::fb_h_tilde_table() const {
  if (!fb_ready_.load(std::memory_order_acquire)) return nullptr;
  return fb_h_tilde_.get();
}

const std::vector<ModExpContext::FixedBaseTable>* QtmcScheme::fb_s_tables()
    const {
  if (!fb_pos_ready_.load(std::memory_order_acquire)) return nullptr;
  return fb_s_.get();
}

Bignum QtmcScheme::pow_g(const Bignum& exponent) const {
  if (const auto* t = fb_g_table()) return mexp_->exp(*t, exponent);
  return mexp_->exp(pk_.g, exponent);
}

Bignum QtmcScheme::pow_g_signed(const Bignum& exponent) const {
  if (const auto* t = fb_g_table()) return mexp_->exp_signed(*t, exponent);
  return mexp_->exp_signed(pk_.g, exponent);
}

Bignum QtmcScheme::pow_h(const Bignum& exponent) const {
  if (const auto* t = fb_h_table()) return mexp_->exp(*t, exponent);
  return mexp_->exp(pk_.h, exponent);
}

Bignum QtmcScheme::pow_h_tilde(const Bignum& exponent) const {
  if (const auto* t = fb_h_tilde_table()) return mexp_->exp(*t, exponent);
  return mexp_->exp(h_tilde_, exponent);
}

Bignum QtmcScheme::pow_s(std::uint32_t pos, const Bignum& exponent) const {
  if (const auto* s = fb_s_tables()) return mexp_->exp((*s)[pos], exponent);
  return mexp_->exp(s_[pos], exponent);
}

QtmcTease QtmcScheme::tease_soft(const QtmcSoftDecommit& dec,
                                 std::uint32_t pos, BytesView msg) const {
  if (pos >= pk_.q) throw CryptoError("qTMC tease_soft: bad position");
  const Bignum m = message_to_scalar(msg);
  const Bignum& e = e_[pos];
  // τ ≡ (r0 − m·ρ_pos)·r1^{-1} (mod e), lifted to ~256 bits so soft teases
  // are distributed like hard ones.
  const Bignum inv_r1 = Bignum::mod_inverse(dec.r1.mod(e), e);
  const Bignum t = Bignum::mod_mul((dec.r0 - m * rho_[pos]).mod(e), inv_r1, e);
  Bignum tau = t + Bignum::rand_bits(kRandomizerBits - kPrimeBits) * e;

  Bignum a = dec.r0 - tau * dec.r1 - m * rho_[pos];
  Bignum rem;
  const Bignum k0 = a.divided_by(e, &rem);
  if (!rem.is_zero()) {
    throw CryptoError("qTMC tease_soft: internal divisibility failure");
  }
  Bignum lambda = pow_g_signed(k0);
  if (!m.is_zero()) {
    const Bignum um = mexp_->exp(u_base(pos), m);
    lambda = Bignum::mod_mul(lambda, Bignum::mod_inverse(um, pk_.n), pk_.n);
  }
  lambda = canonical(lambda);
  return QtmcTease{pos, Bytes(msg.begin(), msg.end()), std::move(tau),
                   std::move(lambda)};
}

Bignum QtmcScheme::canonical(const Bignum& x) const {
  return x > n_half_ ? pk_.n - x : x;
}

bool QtmcScheme::element_canonical(const Bignum& x) const {
  // Requiring the canonical representative (not just [1, N)) makes element
  // encodings unique: x and N−x name the same element of Z_N*/{±1}, and
  // accepting both would let a prover flip signs to grind the Fiat–Shamir
  // batching multipliers.
  return !x.is_zero() && !x.is_negative() && x <= n_half_;
}

void QtmcScheme::accumulate_elements(const std::vector<RsaEquation>& eqs,
                                     std::size_t begin, std::size_t end,
                                     Bignum& acc) const {
  for (std::size_t i = begin; i < end; ++i) {
    for (const RsaTerm& term : eqs[i].lhs) {
      if (term.kind == RsaTerm::Kind::kGeneric) {
        acc = Bignum::mod_mul(acc, term.base, pk_.n);
      }
    }
    acc = Bignum::mod_mul(acc, eqs[i].rhs, pk_.n);
  }
}

bool QtmcScheme::product_coprime(const Bignum& acc) const {
  return Bignum::gcd(acc, pk_.n).is_one();
}

bool QtmcScheme::elements_coprime(const std::vector<RsaEquation>& eqs,
                                  std::size_t begin, std::size_t end) const {
  Bignum acc(1);
  accumulate_elements(eqs, begin, end, acc);
  return product_coprime(acc);
}

bool QtmcScheme::main_equation(const QtmcCommitment& com, std::uint32_t pos,
                               BytesView msg, const Bignum& tau,
                               const Bignum& lambda,
                               std::vector<RsaEquation>& out) const {
  if (pos >= pk_.q || msg.size() != kMessageBytes) return false;
  // Canonical-form checks only; coprimality with N is enforced by the
  // consumer via elements_coprime (one aggregated gcd instead of one per
  // element).
  if (!element_canonical(com.c0) || !element_canonical(com.c1) ||
      !element_canonical(lambda)) {
    return false;
  }
  if (tau.is_negative() || tau.bits() > kMaxExponentBits) return false;
  // Λ^{e_pos} · S_pos^m · C1^τ == C0 (the S term drops for the null
  // message, matching the scalar verifier).
  RsaEquation eq;
  eq.lhs.push_back(RsaTerm{RsaTerm::Kind::kGeneric, 0, lambda, e_[pos]});
  const Bignum m = message_to_scalar(msg);
  if (!m.is_zero()) {
    eq.lhs.push_back(RsaTerm{RsaTerm::Kind::kS, pos, Bignum(), m});
  }
  eq.lhs.push_back(RsaTerm{RsaTerm::Kind::kGeneric, 0, com.c1, tau});
  eq.rhs = com.c0;
  out.push_back(std::move(eq));
  return true;
}

bool QtmcScheme::open_equations(const QtmcCommitment& com,
                                const QtmcOpening& op,
                                std::vector<RsaEquation>& out) const {
  if (op.r1.is_negative() || op.r1.bits() > kMaxExponentBits) return false;
  const std::size_t mark = out.size();
  if (!main_equation(com, op.pos, op.message, op.tau, op.lambda, out)) {
    return false;
  }
  // h^{r1} == C1 — the check that distinguishes hard openings from teases.
  RsaEquation eq;
  eq.lhs.push_back(RsaTerm{RsaTerm::Kind::kH, 0, Bignum(), op.r1});
  eq.rhs = com.c1;
  out.insert(out.begin() + static_cast<std::ptrdiff_t>(mark), std::move(eq));
  return true;
}

bool QtmcScheme::tease_equations(const QtmcCommitment& com,
                                 const QtmcTease& tease,
                                 std::vector<RsaEquation>& out) const {
  return main_equation(com, tease.pos, tease.message, tease.tau, tease.lambda,
                       out);
}

const Bignum& QtmcScheme::term_base(const RsaTerm& term) const {
  switch (term.kind) {
    case RsaTerm::Kind::kH:
      return pk_.h;
    case RsaTerm::Kind::kS:
      DESWORD_CHECK(term.pos < pk_.q, "qTMC term_base: S position");
      return s_[term.pos];
    case RsaTerm::Kind::kGeneric:
      return term.base;
  }
  throw CryptoError("qTMC term_base: bad kind");
}

Bignum QtmcScheme::eval_term(const RsaTerm& term) const {
  switch (term.kind) {
    case RsaTerm::Kind::kH:
      return pow_h(term.exponent);
    case RsaTerm::Kind::kS:
      DESWORD_CHECK(term.pos < pk_.q, "qTMC eval_term: S position");
      return pow_s(term.pos, term.exponent);
    case RsaTerm::Kind::kGeneric:
      return mexp_->exp(term.base, term.exponent);
  }
  throw CryptoError("qTMC eval_term: bad kind");
}

bool QtmcScheme::check_scalar(const RsaEquation& eq) const {
  Bignum acc;
  bool have_acc = false;
  for (const RsaTerm& term : eq.lhs) {
    Bignum factor = eval_term(term);
    acc = have_acc ? Bignum::mod_mul(acc, factor, pk_.n) : std::move(factor);
    have_acc = true;
  }
  // Equality in Z_N*/{±1}: the RHS is canonical by emission
  // (element_canonical), the LHS product is canonicalized here. Proof
  // elements are canonicalized at generation, so honest equations — whose
  // sides may differ by the sign a canonicalization flipped — still hold.
  return have_acc && canonical(acc) == eq.rhs;
}

bool QtmcScheme::verify_open(const QtmcCommitment& com,
                             const QtmcOpening& op) const {
  try {
    std::vector<RsaEquation> eqs;
    if (!open_equations(com, op, eqs)) return false;
    if (!elements_coprime(eqs, 0, eqs.size())) return false;
    for (const RsaEquation& eq : eqs) {
      if (!check_scalar(eq)) return false;
    }
    return true;
  } catch (const Error&) {
    return false;
  }
}

bool QtmcScheme::verify_tease(const QtmcCommitment& com,
                              const QtmcTease& tease) const {
  try {
    std::vector<RsaEquation> eqs;
    if (!tease_equations(com, tease, eqs)) return false;
    if (!elements_coprime(eqs, 0, eqs.size())) return false;
    for (const RsaEquation& eq : eqs) {
      if (!check_scalar(eq)) return false;
    }
    return true;
  } catch (const Error&) {
    return false;
  }
}

std::pair<QtmcCommitment, QtmcSoftDecommit> QtmcScheme::fake_commit(
    const Bignum& trapdoor) const {
  (void)trapdoor;  // needed only at fake_open time
  Bignum k = Bignum::rand_bits(kRandomizerBits);
  Bignum r1 = Bignum::rand_bits(kRandomizerBits);
  while (!Bignum::gcd(r1, prod_all_.mod(r1)).is_one()) {
    r1 = Bignum::rand_bits(kRandomizerBits);
  }
  QtmcCommitment com{canonical(pow_g(k)), canonical(pow_h(r1))};
  return {std::move(com), QtmcSoftDecommit{std::move(k), std::move(r1)}};
}

QtmcOpening QtmcScheme::fake_open(const QtmcSoftDecommit& dec,
                                  const Bignum& trapdoor, std::uint32_t pos,
                                  BytesView msg) const {
  if (pos >= pk_.q) throw CryptoError("qTMC fake_open: bad position");
  const Bignum m = message_to_scalar(msg);
  const Bignum& e = e_[pos];
  // C1 = h^{r1} = g^{a·r1}; solve τ ≡ (k − m·ρ)·(a·r1)^{-1} (mod e).
  const Bignum ar1 = trapdoor * dec.r1;
  const Bignum inv = Bignum::mod_inverse(ar1.mod(e), e);
  const Bignum t = Bignum::mod_mul((dec.r0 - m * rho_[pos]).mod(e), inv, e);
  Bignum tau = t + Bignum::rand_bits(kRandomizerBits - kPrimeBits) * e;

  Bignum a_int = dec.r0 - tau * ar1 - m * rho_[pos];
  Bignum rem;
  const Bignum k0 = a_int.divided_by(e, &rem);
  if (!rem.is_zero()) {
    throw CryptoError("qTMC fake_open: internal divisibility failure");
  }
  Bignum lambda = pow_g_signed(k0);
  if (!m.is_zero()) {
    const Bignum um = mexp_->exp(u_base(pos), m);
    lambda = Bignum::mod_mul(lambda, Bignum::mod_inverse(um, pk_.n), pk_.n);
  }
  lambda = canonical(lambda);
  return QtmcOpening{pos, Bytes(msg.begin(), msg.end()), std::move(tau),
                     std::move(lambda), dec.r1};
}

}  // namespace desword::mercurial
