#include "mercurial/batch_verify.h"

#include <functional>
#include <map>
#include <utility>

#include "common/error.h"
#include "crypto/hash.h"
#include "crypto/randsource.h"
#include "obs/metrics.h"

namespace desword::mercurial {

namespace {

constexpr int kMultiplierBytes = 16;  // 128-bit batching multipliers

obs::Counter& fold_count() {
  static obs::Counter& c = obs::metric("crypto.batch_verify.folds");
  return c;
}

obs::Counter& bisect_count() {
  static obs::Counter& c = obs::metric("crypto.batch_verify.bisect_steps");
  return c;
}

/// Identity key for merging exponents of repeated RSA bases. LHS and RHS
/// accumulators are kept separate, so merging never needs inverses (the
/// group order is hidden); the key only has to be injective per side.
Bytes rsa_base_key(const RsaTerm& term) {
  Bytes key;
  switch (term.kind) {
    case RsaTerm::Kind::kH:
      key.push_back(1);
      return key;
    case RsaTerm::Kind::kS:
      key.push_back(2);
      for (int shift = 24; shift >= 0; shift -= 8) {
        key.push_back(static_cast<std::uint8_t>(term.pos >> shift));
      }
      return key;
    case RsaTerm::Kind::kGeneric:
      key.push_back(0);
      break;
  }
  const Bytes b = term.base.to_bytes();
  key.insert(key.end(), b.begin(), b.end());
  return key;
}

Bytes rsa_rhs_key(const Bignum& rhs) {
  Bytes key;
  key.push_back(0);
  const Bytes b = rhs.to_bytes();
  key.insert(key.end(), b.begin(), b.end());
  return key;
}

}  // namespace

BatchVerifier::BatchVerifier(const QtmcScheme& qtmc, const TmcScheme* tmc)
    : qtmc_(&qtmc), tmc_(tmc) {}

std::size_t BatchVerifier::begin_unit() {
  UnitRange u;
  u.rsa_begin = u.rsa_end = rsa_eqs_.size();
  u.ec_begin = u.ec_end = ec_eqs_.size();
  units_.push_back(u);
  return units_.size() - 1;
}

bool BatchVerifier::add_open(const QtmcCommitment& com, const QtmcOpening& op) {
  DESWORD_CHECK(!units_.empty(), "BatchVerifier: begin_unit before add_open");
  UnitRange& u = units_.back();
  if (!qtmc_->open_equations(com, op, rsa_eqs_)) {
    u.failed = true;
    return false;
  }
  u.rsa_end = rsa_eqs_.size();
  return true;
}

bool BatchVerifier::add_tease(const QtmcCommitment& com,
                              const QtmcTease& tease) {
  DESWORD_CHECK(!units_.empty(), "BatchVerifier: begin_unit before add_tease");
  UnitRange& u = units_.back();
  if (!qtmc_->tease_equations(com, tease, rsa_eqs_)) {
    u.failed = true;
    return false;
  }
  u.rsa_end = rsa_eqs_.size();
  return true;
}

bool BatchVerifier::add_leaf_open(const TmcCommitment& com,
                                  const TmcOpening& op) {
  DESWORD_CHECK(!units_.empty(),
                "BatchVerifier: begin_unit before add_leaf_open");
  DESWORD_CHECK(tmc_ != nullptr, "BatchVerifier: no TMC scheme configured");
  UnitRange& u = units_.back();
  if (!tmc_->open_equations(com, op, ec_eqs_)) {
    u.failed = true;
    return false;
  }
  u.ec_end = ec_eqs_.size();
  return true;
}

bool BatchVerifier::add_leaf_tease(const TmcCommitment& com,
                                   const TmcTease& tease) {
  DESWORD_CHECK(!units_.empty(),
                "BatchVerifier: begin_unit before add_leaf_tease");
  DESWORD_CHECK(tmc_ != nullptr, "BatchVerifier: no TMC scheme configured");
  UnitRange& u = units_.back();
  if (!tmc_->tease_equations(com, tease, ec_eqs_)) {
    u.failed = true;
    return false;
  }
  u.ec_end = ec_eqs_.size();
  return true;
}

void BatchVerifier::fail_unit() {
  DESWORD_CHECK(!units_.empty(), "BatchVerifier: begin_unit before fail_unit");
  units_.back().failed = true;
}

void BatchVerifier::derive_multipliers(std::vector<Bignum>& rsa_r,
                                       std::vector<Bignum>& ec_r) const {
  // Fiat–Shamir: the multipliers are a deterministic function of every
  // accumulated equation, so a prover committed to its proofs cannot pick
  // proofs as a function of the multipliers. Each field is length-prefixed
  // by TaggedHasher, making the transcript encoding injective.
  TaggedHasher h("desword/batch-verify");
  h.add_u64(rsa_eqs_.size());
  for (const RsaEquation& eq : rsa_eqs_) {
    h.add_u64(eq.lhs.size());
    for (const RsaTerm& t : eq.lhs) {
      h.add_u64(static_cast<std::uint64_t>(t.kind));
      h.add_u64(t.pos);
      h.add(t.base.to_bytes());
      h.add(t.exponent.to_bytes());
    }
    h.add(eq.rhs.to_bytes());
  }
  h.add_u64(ec_eqs_.size());
  for (const EcEquation& eq : ec_eqs_) {
    h.add_u64(eq.lhs.size());
    for (const EcTerm& t : eq.lhs) {
      h.add_u64(static_cast<std::uint64_t>(t.kind));
      h.add(t.elem);
      h.add(t.scalar.to_bytes());
    }
    h.add(eq.rhs);
  }
  DrbgRandomSource drbg(h.digest());
  rsa_r.reserve(rsa_eqs_.size());
  for (std::size_t i = 0; i < rsa_eqs_.size(); ++i) {
    rsa_r.push_back(Bignum::from_bytes(drbg.bytes(kMultiplierBytes)));
  }
  ec_r.reserve(ec_eqs_.size());
  for (std::size_t i = 0; i < ec_eqs_.size(); ++i) {
    ec_r.push_back(Bignum::from_bytes(drbg.bytes(kMultiplierBytes)));
  }
}

bool BatchVerifier::fold_rsa(const std::vector<std::size_t>& unit_idxs,
                             const std::vector<Bignum>& rsa_r) const {
  // Aggregated coprimality check: emission only canonical-form-checks the
  // proof-supplied elements; the gcd(x, N) = 1 requirement of the scalar
  // verifiers is enforced here with ONE gcd over the product of every
  // element in the fold. A non-coprime element fails the fold, bisection
  // isolates its unit, and scalar_unit re-applies the check per unit — so
  // verdicts still match verify_open/verify_tease exactly.
  {
    Bignum elem_acc(1);
    for (std::size_t u : unit_idxs) {
      const UnitRange& range = units_[u];
      qtmc_->accumulate_elements(rsa_eqs_, range.rsa_begin, range.rsa_end,
                                 elem_acc);
    }
    if (!qtmc_->product_coprime(elem_acc)) return false;
  }
  // Exponents are merged per distinct base as plain integers — over the
  // hidden-order RSA group they must never be reduced.
  std::map<Bytes, ModExpContext::ExpTerm> lhs;
  std::map<Bytes, ModExpContext::ExpTerm> rhs;
  const auto accumulate = [](std::map<Bytes, ModExpContext::ExpTerm>& acc,
                             Bytes key, const Bignum& base, Bignum contrib) {
    auto it = acc.find(key);
    if (it == acc.end()) {
      acc.emplace(std::move(key),
                  ModExpContext::ExpTerm{base, std::move(contrib)});
    } else {
      it->second.exponent += contrib;
    }
  };
  bool any = false;
  for (std::size_t u : unit_idxs) {
    const UnitRange& range = units_[u];
    for (std::size_t i = range.rsa_begin; i < range.rsa_end; ++i) {
      any = true;
      const Bignum& r = rsa_r[i];
      const RsaEquation& eq = rsa_eqs_[i];
      for (const RsaTerm& t : eq.lhs) {
        accumulate(lhs, rsa_base_key(t), qtmc_->term_base(t), t.exponent * r);
      }
      accumulate(rhs, rsa_rhs_key(eq.rhs), eq.rhs, r);
    }
  }
  if (!any) return true;
  std::vector<ModExpContext::ExpTerm> lhs_terms;
  lhs_terms.reserve(lhs.size());
  for (auto& [key, term] : lhs) lhs_terms.push_back(std::move(term));
  std::vector<ModExpContext::ExpTerm> rhs_terms;
  rhs_terms.reserve(rhs.size());
  for (auto& [key, term] : rhs) rhs_terms.push_back(std::move(term));
  const ModExpContext& mexp = qtmc_->modexp_context();
  // The fold is compared in the quotient group Z_N*/{±1}, matching
  // check_scalar: canonicalizing the two folded products projects the
  // Z_N* computation through the quotient homomorphism. In Z_N* itself
  // small-exponent batching is UNSOUND — the publicly known order-2
  // element −1 gives a sign-flip defect (−1)^{r_i} that cancels for every
  // even multiplier — while in the quotient −1 is the identity and no
  // other low-order element is computable without factoring N.
  return qtmc_->canonical(mexp.multi_exp(lhs_terms)) ==
         qtmc_->canonical(mexp.multi_exp(rhs_terms));
}

bool BatchVerifier::fold_ec(const std::vector<std::size_t>& unit_idxs,
                            const std::vector<Bignum>& ec_r) const {
  if (tmc_ == nullptr) return true;  // no EC equations can exist
  const Group& group = tmc_->group();
  const Bignum& order = group.order();
  std::map<Bytes, Bignum> lhs;
  std::map<Bytes, Bignum> rhs;
  const auto accumulate = [&order](std::map<Bytes, Bignum>& acc,
                                   const Bytes& elem, const Bignum& contrib) {
    auto it = acc.find(elem);
    if (it == acc.end()) {
      acc.emplace(elem, contrib);
    } else {
      it->second = (it->second + contrib).mod(order);
    }
  };
  bool any = false;
  for (std::size_t u : unit_idxs) {
    const UnitRange& range = units_[u];
    for (std::size_t i = range.ec_begin; i < range.ec_end; ++i) {
      any = true;
      const Bignum& r = ec_r[i];
      const EcEquation& eq = ec_eqs_[i];
      for (const EcTerm& t : eq.lhs) {
        accumulate(lhs, tmc_->term_elem(t),
                   Bignum::mod_mul(t.scalar.mod(order), r, order));
      }
      accumulate(rhs, eq.rhs, r.mod(order));
    }
  }
  if (!any) return true;
  try {
    const std::vector<std::pair<Bytes, Bignum>> lhs_terms(lhs.begin(),
                                                          lhs.end());
    const std::vector<std::pair<Bytes, Bignum>> rhs_terms(rhs.begin(),
                                                          rhs.end());
    return group.multi_exp(lhs_terms) == group.multi_exp(rhs_terms);
  } catch (const Error&) {
    // A folded side collapsed to the (unencodable) identity. Treat as a
    // fold mismatch: bisection settles the affected units scalar-exactly.
    return false;
  }
}

bool BatchVerifier::fold(const std::vector<std::size_t>& unit_idxs,
                         const std::vector<Bignum>& rsa_r,
                         const std::vector<Bignum>& ec_r) const {
  fold_count().add();
  return fold_rsa(unit_idxs, rsa_r) && fold_ec(unit_idxs, ec_r);
}

bool BatchVerifier::scalar_unit(std::size_t unit) const {
  const UnitRange& range = units_[unit];
  try {
    if (!qtmc_->elements_coprime(rsa_eqs_, range.rsa_begin, range.rsa_end)) {
      return false;
    }
    for (std::size_t i = range.rsa_begin; i < range.rsa_end; ++i) {
      if (!qtmc_->check_scalar(rsa_eqs_[i])) return false;
    }
    for (std::size_t i = range.ec_begin; i < range.ec_end; ++i) {
      if (!tmc_->check_scalar(ec_eqs_[i])) return false;
    }
    return true;
  } catch (const Error&) {
    return false;
  }
}

BatchVerifier::Result BatchVerifier::verify() const {
  Result res;
  res.unit_ok.assign(units_.size(), false);
  std::vector<std::size_t> live;
  live.reserve(units_.size());
  for (std::size_t u = 0; u < units_.size(); ++u) {
    if (!units_[u].failed) live.push_back(u);
  }
  std::vector<Bignum> rsa_r;
  std::vector<Bignum> ec_r;
  derive_multipliers(rsa_r, ec_r);
  // One fold for the whole batch in the common (all-honest) case; on
  // failure, halve and re-fold until the offending units are isolated and
  // settle each isolated unit with the exact scalar equations.
  const std::function<void(const std::vector<std::size_t>&)> settle =
      [&](const std::vector<std::size_t>& idxs) {
        if (idxs.empty()) return;
        if (fold(idxs, rsa_r, ec_r)) {
          for (std::size_t u : idxs) res.unit_ok[u] = true;
          return;
        }
        if (idxs.size() == 1) {
          res.unit_ok[idxs[0]] = scalar_unit(idxs[0]);
          return;
        }
        bisect_count().add();
        const auto mid =
            idxs.begin() + static_cast<std::ptrdiff_t>(idxs.size() / 2);
        settle(std::vector<std::size_t>(idxs.begin(), mid));
        settle(std::vector<std::size_t>(mid, idxs.end()));
      };
  settle(live);
  res.all_ok = true;
  for (std::size_t u = 0; u < units_.size(); ++u) {
    if (!res.unit_ok[u]) {
      res.all_ok = false;
      break;
    }
  }
  return res;
}

}  // namespace desword::mercurial
