// The supply-chain digraph (Figure 1 of the paper).
//
// Vertices are participants; a directed edge v_i -> v_j means a product may
// proceed to v_j after being processed by v_i. The digraph is dynamic:
// participants and edges can be added and removed. Initial participants
// have no incoming edges; leaf participants have no outgoing edges.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace desword::supplychain {

using ParticipantId = std::string;

class SupplyChainGraph {
 public:
  /// Adds a participant; idempotent.
  void add_participant(const ParticipantId& id);

  /// Removes a participant and all incident edges. Throws ProtocolError if
  /// the participant is unknown.
  void remove_participant(const ParticipantId& id);

  /// Adds an edge (participants are created implicitly). Throws
  /// ProtocolError on self loops or if the edge would create a cycle —
  /// products flow forward through a supply chain.
  void add_edge(const ParticipantId& from, const ParticipantId& to);

  /// Removes an edge. Throws ProtocolError if absent.
  void remove_edge(const ParticipantId& from, const ParticipantId& to);

  bool has_participant(const ParticipantId& id) const;
  bool has_edge(const ParticipantId& from, const ParticipantId& to) const;

  std::vector<ParticipantId> children_of(const ParticipantId& id) const;
  std::vector<ParticipantId> parents_of(const ParticipantId& id) const;

  bool is_initial(const ParticipantId& id) const;
  bool is_leaf(const ParticipantId& id) const;

  std::vector<ParticipantId> initial_participants() const;
  std::vector<ParticipantId> leaf_participants() const;
  std::vector<ParticipantId> participants() const;

  std::size_t participant_count() const { return adjacency_.size(); }
  std::size_t edge_count() const;

  /// Builds the 10-participant example digraph of the paper's Figure 1.
  static SupplyChainGraph paper_example();

  /// Builds a layered synthetic chain: `layers` tiers of `width`
  /// participants each, every participant wired to `fanout` children in
  /// the next tier (workload generator for benchmarks).
  static SupplyChainGraph layered(std::size_t layers, std::size_t width,
                                  std::size_t fanout);

 private:
  bool reachable(const ParticipantId& from, const ParticipantId& to) const;

  std::map<ParticipantId, std::set<ParticipantId>> adjacency_;
  std::map<ParticipantId, std::set<ParticipantId>> reverse_;
};

}  // namespace desword::supplychain
