// Distribution-task engine (§II-A).
//
// A distribution task ships a batch of tagged products from an initial
// participant towards leaf participants along digraph edges. Every
// participant that receives a sub-batch inventories it with its RFID
// reader, records an RFID-trace per product, splits the batch and forwards
// the pieces to its children. The engine returns both the resulting
// per-participant trace databases (what DE-Sword sees) and the ground-truth
// product paths (what tests and benchmarks compare against).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "supplychain/graph.h"
#include "supplychain/rfid.h"
#include "supplychain/trace.h"

namespace desword::supplychain {

struct DistributionConfig {
  ParticipantId initial;
  std::vector<ProductId> products;
  std::uint64_t seed = 1;          // routing determinism for experiments
  std::uint64_t start_time = 0;    // simulation clock origin
  double reader_miss_rate = 0.0;   // per-read tag miss probability
};

struct DistributionResult {
  /// Ground-truth path (initial -> leaf) of every product.
  std::map<ProductId, std::vector<ParticipantId>> paths;
  /// Per-participant RFID-trace databases (D_v).
  std::map<ParticipantId, TraceDatabase> databases;
  /// Participants that processed at least one product, in id order.
  std::vector<ParticipantId> involved;
  /// Digraph edges actually used by the task (the POC-pair sub-digraph).
  std::map<ParticipantId, std::set<ParticipantId>> used_edges;
};

/// Runs one distribution task. Throws ProtocolError if `initial` is not an
/// initial participant of the graph or products are malformed/duplicated.
DistributionResult run_distribution(const SupplyChainGraph& graph,
                                    const DistributionConfig& config);

/// Convenience workload generator: `count` fresh EPCs under one manager.
std::vector<ProductId> make_products(std::uint32_t manager,
                                     std::uint64_t first_serial,
                                     std::size_t count);

}  // namespace desword::supplychain
