#include "supplychain/graph.h"

#include <deque>

#include "common/error.h"

namespace desword::supplychain {

void SupplyChainGraph::add_participant(const ParticipantId& id) {
  if (id.empty()) throw ProtocolError("participant id must be non-empty");
  adjacency_.try_emplace(id);
  reverse_.try_emplace(id);
}

void SupplyChainGraph::remove_participant(const ParticipantId& id) {
  if (!has_participant(id)) {
    throw ProtocolError("unknown participant: " + id);
  }
  for (const auto& child : adjacency_.at(id)) reverse_.at(child).erase(id);
  for (const auto& parent : reverse_.at(id)) adjacency_.at(parent).erase(id);
  adjacency_.erase(id);
  reverse_.erase(id);
}

bool SupplyChainGraph::reachable(const ParticipantId& from,
                                 const ParticipantId& to) const {
  std::deque<ParticipantId> queue{from};
  std::set<ParticipantId> seen{from};
  while (!queue.empty()) {
    const ParticipantId cur = queue.front();
    queue.pop_front();
    if (cur == to) return true;
    const auto it = adjacency_.find(cur);
    if (it == adjacency_.end()) continue;
    for (const auto& next : it->second) {
      if (seen.insert(next).second) queue.push_back(next);
    }
  }
  return false;
}

void SupplyChainGraph::add_edge(const ParticipantId& from,
                                const ParticipantId& to) {
  if (from == to) throw ProtocolError("self loop in supply chain");
  add_participant(from);
  add_participant(to);
  if (reachable(to, from)) {
    throw ProtocolError("edge " + from + "->" + to +
                        " would create a cycle");
  }
  adjacency_.at(from).insert(to);
  reverse_.at(to).insert(from);
}

void SupplyChainGraph::remove_edge(const ParticipantId& from,
                                   const ParticipantId& to) {
  if (!has_edge(from, to)) {
    throw ProtocolError("unknown edge " + from + "->" + to);
  }
  adjacency_.at(from).erase(to);
  reverse_.at(to).erase(from);
}

bool SupplyChainGraph::has_participant(const ParticipantId& id) const {
  return adjacency_.find(id) != adjacency_.end();
}

bool SupplyChainGraph::has_edge(const ParticipantId& from,
                                const ParticipantId& to) const {
  const auto it = adjacency_.find(from);
  return it != adjacency_.end() && it->second.count(to) > 0;
}

std::vector<ParticipantId> SupplyChainGraph::children_of(
    const ParticipantId& id) const {
  const auto it = adjacency_.find(id);
  if (it == adjacency_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<ParticipantId> SupplyChainGraph::parents_of(
    const ParticipantId& id) const {
  const auto it = reverse_.find(id);
  if (it == reverse_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

bool SupplyChainGraph::is_initial(const ParticipantId& id) const {
  const auto it = reverse_.find(id);
  return it != reverse_.end() && it->second.empty();
}

bool SupplyChainGraph::is_leaf(const ParticipantId& id) const {
  const auto it = adjacency_.find(id);
  return it != adjacency_.end() && it->second.empty();
}

std::vector<ParticipantId> SupplyChainGraph::initial_participants() const {
  std::vector<ParticipantId> out;
  for (const auto& [id, edges] : adjacency_) {
    if (is_initial(id)) out.push_back(id);
  }
  return out;
}

std::vector<ParticipantId> SupplyChainGraph::leaf_participants() const {
  std::vector<ParticipantId> out;
  for (const auto& [id, edges] : adjacency_) {
    if (edges.empty()) out.push_back(id);
  }
  return out;
}

std::vector<ParticipantId> SupplyChainGraph::participants() const {
  std::vector<ParticipantId> out;
  out.reserve(adjacency_.size());
  for (const auto& [id, edges] : adjacency_) out.push_back(id);
  return out;
}

std::size_t SupplyChainGraph::edge_count() const {
  std::size_t n = 0;
  for (const auto& [id, edges] : adjacency_) n += edges.size();
  return n;
}

SupplyChainGraph SupplyChainGraph::paper_example() {
  // Figure 1: v0, v1 initial; v5, v7, v8, v9 leaves. Edges chosen to match
  // the example flow (v0 -> v2 -> v5 carries product id1).
  SupplyChainGraph g;
  g.add_edge("v0", "v2");
  g.add_edge("v0", "v3");
  g.add_edge("v1", "v3");
  g.add_edge("v1", "v4");
  g.add_edge("v2", "v5");
  g.add_edge("v2", "v6");
  g.add_edge("v3", "v6");
  g.add_edge("v4", "v7");
  g.add_edge("v6", "v8");
  g.add_edge("v6", "v9");
  g.add_edge("v4", "v9");
  return g;
}

SupplyChainGraph SupplyChainGraph::layered(std::size_t layers,
                                           std::size_t width,
                                           std::size_t fanout) {
  if (layers < 2 || width == 0 || fanout == 0) {
    throw ProtocolError("layered graph needs layers >= 2, width/fanout >= 1");
  }
  SupplyChainGraph g;
  const auto name = [](std::size_t layer, std::size_t i) {
    return "L" + std::to_string(layer) + "-" + std::to_string(i);
  };
  for (std::size_t layer = 0; layer + 1 < layers; ++layer) {
    for (std::size_t i = 0; i < width; ++i) {
      for (std::size_t f = 0; f < fanout; ++f) {
        g.add_edge(name(layer, i), name(layer + 1, (i + f) % width));
      }
    }
  }
  return g;
}

}  // namespace desword::supplychain
