#include "supplychain/rfid.h"

#include <algorithm>
#include <set>

#include "common/error.h"

namespace desword::supplychain {

namespace {
// EPC-96 SGTIN-ish header byte.
constexpr std::uint8_t kEpcHeader = 0x30;
}  // namespace

ProductId make_epc(std::uint32_t manager, std::uint32_t object_class,
                   std::uint64_t serial) {
  // Layout (simplified SGTIN-96): 1B header | 4B manager | 3B class |
  // 4B serial.
  if (object_class > 0xffffff) {
    throw ProtocolError("EPC object class exceeds 24 bits");
  }
  if (serial > 0xffffffffULL) {
    throw ProtocolError("EPC serial exceeds 32 bits");
  }
  ProductId id(kEpcBytes);
  id[0] = kEpcHeader;
  id[1] = static_cast<std::uint8_t>(manager >> 24);
  id[2] = static_cast<std::uint8_t>(manager >> 16);
  id[3] = static_cast<std::uint8_t>(manager >> 8);
  id[4] = static_cast<std::uint8_t>(manager);
  id[5] = static_cast<std::uint8_t>(object_class >> 16);
  id[6] = static_cast<std::uint8_t>(object_class >> 8);
  id[7] = static_cast<std::uint8_t>(object_class);
  id[8] = static_cast<std::uint8_t>(serial >> 24);
  id[9] = static_cast<std::uint8_t>(serial >> 16);
  id[10] = static_cast<std::uint8_t>(serial >> 8);
  id[11] = static_cast<std::uint8_t>(serial);
  return id;
}

std::string epc_to_string(const ProductId& id) {
  return "epc:" + to_hex(id);
}

bool epc_valid(const ProductId& id) {
  return id.size() == kEpcBytes && id[0] == kEpcHeader;
}

RfidTag::RfidTag(ProductId id) : id_(std::move(id)) {
  if (!epc_valid(id_)) throw ProtocolError("invalid EPC identifier");
}

void RfidTag::write_user_bank(BytesView data) {
  if (data.size() > kUserBankCapacity) {
    throw ProtocolError("tag user bank overflow");
  }
  user_bank_.assign(data.begin(), data.end());
}

RfidReader::RfidReader(std::string name, double miss_rate, std::uint64_t seed)
    : name_(std::move(name)), miss_rate_(miss_rate), rng_(seed) {
  if (miss_rate_ < 0.0 || miss_rate_ >= 1.0) {
    throw ProtocolError("reader miss rate must be in [0, 1)");
  }
}

std::vector<ProductId> RfidReader::inventory_round(
    const std::vector<RfidTag>& tags) {
  std::vector<ProductId> seen;
  seen.reserve(tags.size());
  for (const RfidTag& tag : tags) {
    ++total_reads_;
    if (!rng_.chance(miss_rate_)) seen.push_back(tag.id());
  }
  return seen;
}

std::vector<ProductId> RfidReader::inventory_all(
    const std::vector<RfidTag>& tags, int max_rounds) {
  std::set<ProductId> seen;
  for (int round = 0; round < max_rounds && seen.size() < tags.size();
       ++round) {
    for (ProductId& id : inventory_round(tags)) seen.insert(std::move(id));
  }
  if (seen.size() < tags.size()) {
    throw ProtocolError("reader failed to inventory all tags");
  }
  return {seen.begin(), seen.end()};
}

std::optional<ProductId> RfidReader::read_tag(const RfidTag& tag) {
  ++total_reads_;
  if (rng_.chance(miss_rate_)) return std::nullopt;
  return tag.id();
}

}  // namespace desword::supplychain
