// Simulated RFID layer.
//
// The paper's tag-side requirements are deliberately minimal: tags "carry
// short product identifiers and support basic read operation". We model
// EPC-96-style identifiers (96 bits: header / manager / object class /
// serial), a tag with a small user memory bank, and a reader that
// inventories a population of tags with an optional per-read miss rate
// (real readers miss tags; protocols above must tolerate re-reads).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"

namespace desword::supplychain {

/// 96-bit EPC product identifier (12 bytes).
using ProductId = Bytes;

inline constexpr std::size_t kEpcBytes = 12;

/// Builds an EPC-96 identifier from its fields.
ProductId make_epc(std::uint32_t manager, std::uint32_t object_class,
                   std::uint64_t serial);

/// Hex rendering for logs and examples.
std::string epc_to_string(const ProductId& id);

/// True iff `id` is a well-formed EPC-96 identifier.
bool epc_valid(const ProductId& id);

/// A passive UHF tag: identifier plus a small writable user bank.
class RfidTag {
 public:
  explicit RfidTag(ProductId id);

  const ProductId& id() const { return id_; }

  /// Writes into user memory; throws ProtocolError beyond capacity
  /// (tags have tiny memories — the paper's design keeps all state in
  /// backend databases for exactly this reason).
  void write_user_bank(BytesView data);
  const Bytes& user_bank() const { return user_bank_; }

  static constexpr std::size_t kUserBankCapacity = 64;  // bytes

 private:
  ProductId id_;
  Bytes user_bank_;
};

/// A reader inventorying tag populations. `miss_rate` models per-tag read
/// failures; inventory_all retries until every tag is seen (bounded).
class RfidReader {
 public:
  explicit RfidReader(std::string name, double miss_rate = 0.0,
                      std::uint64_t seed = 1);

  const std::string& name() const { return name_; }

  /// One inventory round: each tag is seen independently with probability
  /// (1 - miss_rate).
  std::vector<ProductId> inventory_round(const std::vector<RfidTag>& tags);

  /// Repeats inventory rounds (up to `max_rounds`) until all tags are
  /// seen; returns the union. Throws ProtocolError if tags remain unseen.
  std::vector<ProductId> inventory_all(const std::vector<RfidTag>& tags,
                                       int max_rounds = 32);

  /// Singulates one tag and reads its identifier.
  std::optional<ProductId> read_tag(const RfidTag& tag);

  std::uint64_t total_reads() const { return total_reads_; }

 private:
  std::string name_;
  double miss_rate_;
  SimRng rng_;
  std::uint64_t total_reads_ = 0;
};

}  // namespace desword::supplychain
