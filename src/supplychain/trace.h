// RFID-traces: t_v^id = (id, da_v^id).
//
// The information part `da` records production details (operation,
// ingredients, parameters, timestamp). Its canonical serialization is the
// value committed into POCs, so it must be deterministic.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "supplychain/rfid.h"

namespace desword::supplychain {

/// Production information recorded when a participant processes a product.
struct TraceInfo {
  std::string participant;  // who processed it
  std::string operation;    // e.g. "manufacture", "repackage", "ship"
  std::uint64_t timestamp = 0;  // simulation time
  std::vector<std::string> ingredients;
  std::vector<std::string> parameters;

  bool operator==(const TraceInfo&) const = default;
  Bytes serialize() const;
  static TraceInfo deserialize(BytesView data);
};

/// A full RFID-trace.
struct RfidTrace {
  ProductId id;
  TraceInfo da;

  bool operator==(const RfidTrace&) const = default;
  Bytes serialize() const;
  static RfidTrace deserialize(BytesView data);
};

/// A participant's local trace database (D_v), keyed by product id.
class TraceDatabase {
 public:
  /// Records a trace; re-recording the same product id overwrites (a
  /// participant keeps one trace per product per task).
  void record(const RfidTrace& trace);

  bool has(const ProductId& id) const;
  const RfidTrace* find(const ProductId& id) const;
  std::size_t size() const { return traces_.size(); }
  void remove(const ProductId& id);
  void clear() { traces_.clear(); }

  /// Product id -> serialized da, the input of POC-Agg.
  std::map<Bytes, Bytes> as_poc_input() const;

  /// All traces in id order.
  std::vector<RfidTrace> all() const;

 private:
  std::map<ProductId, RfidTrace> traces_;
};

}  // namespace desword::supplychain
