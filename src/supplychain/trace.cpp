#include "supplychain/trace.h"

#include "common/error.h"
#include "common/serial.h"

namespace desword::supplychain {

Bytes TraceInfo::serialize() const {
  BinaryWriter w;
  w.str(participant);
  w.str(operation);
  w.u64(timestamp);
  w.varint(ingredients.size());
  for (const auto& s : ingredients) w.str(s);
  w.varint(parameters.size());
  for (const auto& s : parameters) w.str(s);
  return w.take();
}

TraceInfo TraceInfo::deserialize(BytesView data) {
  BinaryReader r(data);
  TraceInfo info;
  info.participant = r.str();
  info.operation = r.str();
  info.timestamp = r.u64();
  const std::uint64_t n_ing = r.varint();
  for (std::uint64_t i = 0; i < n_ing; ++i) info.ingredients.push_back(r.str());
  const std::uint64_t n_par = r.varint();
  for (std::uint64_t i = 0; i < n_par; ++i) info.parameters.push_back(r.str());
  r.expect_done();
  return info;
}

Bytes RfidTrace::serialize() const {
  BinaryWriter w;
  w.bytes(id);
  w.bytes(da.serialize());
  return w.take();
}

RfidTrace RfidTrace::deserialize(BytesView data) {
  BinaryReader r(data);
  RfidTrace t;
  t.id = r.bytes();
  t.da = TraceInfo::deserialize(r.bytes());
  r.expect_done();
  if (!epc_valid(t.id)) throw SerializationError("trace has invalid EPC");
  return t;
}

void TraceDatabase::record(const RfidTrace& trace) {
  if (!epc_valid(trace.id)) {
    throw ProtocolError("cannot record trace with invalid EPC");
  }
  traces_[trace.id] = trace;
}

bool TraceDatabase::has(const ProductId& id) const {
  return traces_.find(id) != traces_.end();
}

const RfidTrace* TraceDatabase::find(const ProductId& id) const {
  const auto it = traces_.find(id);
  return it == traces_.end() ? nullptr : &it->second;
}

void TraceDatabase::remove(const ProductId& id) { traces_.erase(id); }

std::map<Bytes, Bytes> TraceDatabase::as_poc_input() const {
  std::map<Bytes, Bytes> out;
  for (const auto& [id, trace] : traces_) {
    out.emplace(id, trace.da.serialize());
  }
  return out;
}

std::vector<RfidTrace> TraceDatabase::all() const {
  std::vector<RfidTrace> out;
  out.reserve(traces_.size());
  for (const auto& [id, trace] : traces_) out.push_back(trace);
  return out;
}

}  // namespace desword::supplychain
