#include "supplychain/distribution.h"

#include <deque>

#include "common/error.h"

namespace desword::supplychain {

namespace {

/// Operation label by position in the chain.
std::string operation_for(const SupplyChainGraph& graph,
                          const ParticipantId& id) {
  if (graph.is_initial(id)) return "manufacture";
  if (graph.is_leaf(id)) return "retail";
  return "process";
}

}  // namespace

DistributionResult run_distribution(const SupplyChainGraph& graph,
                                    const DistributionConfig& config) {
  if (!graph.has_participant(config.initial)) {
    throw ProtocolError("unknown initial participant: " + config.initial);
  }
  if (!graph.is_initial(config.initial)) {
    throw ProtocolError(config.initial + " is not an initial participant");
  }
  std::set<ProductId> unique;
  for (const ProductId& id : config.products) {
    if (!epc_valid(id)) throw ProtocolError("malformed product EPC");
    if (!unique.insert(id).second) {
      throw ProtocolError("duplicate product in batch");
    }
  }

  SimRng rng(config.seed);
  DistributionResult result;

  struct PendingBatch {
    ParticipantId at;
    std::vector<RfidTag> tags;
    std::uint64_t time;
  };

  std::vector<RfidTag> initial_tags;
  initial_tags.reserve(config.products.size());
  for (const ProductId& id : config.products) initial_tags.emplace_back(id);

  std::deque<PendingBatch> queue;
  queue.push_back(
      {config.initial, std::move(initial_tags), config.start_time});

  while (!queue.empty()) {
    PendingBatch batch = std::move(queue.front());
    queue.pop_front();
    if (batch.tags.empty()) continue;

    // The participant inventories the received batch with its reader and
    // records one trace per product.
    RfidReader reader("reader@" + batch.at, config.reader_miss_rate,
                      rng.next() | 1);
    const std::vector<ProductId> seen = reader.inventory_all(batch.tags);
    TraceDatabase& db = result.databases[batch.at];
    for (const ProductId& id : seen) {
      TraceInfo info;
      info.participant = batch.at;
      info.operation = operation_for(graph, batch.at);
      info.timestamp = batch.time;
      info.parameters.push_back("batch-size=" +
                                std::to_string(batch.tags.size()));
      db.record(RfidTrace{id, std::move(info)});
      result.paths[id].push_back(batch.at);
    }

    const std::vector<ParticipantId> children = graph.children_of(batch.at);
    if (children.empty()) continue;  // leaf: products stay here

    // Split the batch: each product proceeds to one uniformly chosen child.
    std::map<ParticipantId, std::vector<RfidTag>> split;
    for (RfidTag& tag : batch.tags) {
      const ParticipantId& child = children[rng.below(children.size())];
      split[child].push_back(std::move(tag));
    }
    for (auto& [child, tags] : split) {
      result.used_edges[batch.at].insert(child);
      queue.push_back({child, std::move(tags), batch.time + 1});
    }
  }

  for (const auto& [id, db] : result.databases) {
    if (db.size() > 0) result.involved.push_back(id);
  }
  return result;
}

std::vector<ProductId> make_products(std::uint32_t manager,
                                     std::uint64_t first_serial,
                                     std::size_t count) {
  std::vector<ProductId> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(make_epc(manager, /*object_class=*/1, first_serial + i));
  }
  return out;
}

}  // namespace desword::supplychain
