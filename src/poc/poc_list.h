// POC list — the artifact a distribution task delivers to the proxy.
//
// Per §IV-B, the POC list is "(ps, {(POC_vi, POC_vj)})": the public
// parameter plus a sub-digraph whose vertices carry the POCs of the
// involved participants and whose edges are the parent/child POC pairs
// observed during the task. The proxy later uses it to (a) look up the POC
// of each queried participant and (b) cross-check claimed next-hop
// identities against the recorded edges (§III-B, wrong-participant case 2).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "poc/poc.h"

namespace desword::poc {

class PocList {
 public:
  PocList() = default;
  /// `ps` is the serialized EdbPublicParams the POCs were built under.
  explicit PocList(Bytes ps) : ps_(std::move(ps)) {}

  const Bytes& ps() const { return ps_; }

  /// Registers a participant's POC. Throws ProtocolError if the same
  /// participant is registered twice with a different commitment.
  void add_poc(const Poc& poc);

  /// Records a POC pair (parent -> child). Both endpoints must have been
  /// registered via add_poc.
  void add_edge(const std::string& parent, const std::string& child);

  /// POC of `participant`, or nullptr if unknown.
  const Poc* find(const std::string& participant) const;

  bool has_edge(const std::string& parent, const std::string& child) const;
  std::vector<std::string> children_of(const std::string& parent) const;
  std::vector<std::string> parents_of(const std::string& child) const;

  /// Participants with no incoming edge (task-initial participants).
  std::vector<std::string> initial_participants() const;
  std::vector<std::string> participants() const;

  std::size_t poc_count() const { return pocs_.size(); }
  std::size_t edge_count() const;

  Bytes serialize() const;
  static PocList deserialize(BytesView data);

 private:
  Bytes ps_;
  std::map<std::string, Poc> pocs_;
  std::map<std::string, std::set<std::string>> children_;
  std::map<std::string, std::set<std::string>> parents_;
};

}  // namespace desword::poc
