#include "poc/poc_list.h"

#include "common/error.h"
#include "common/serial.h"

namespace desword::poc {

void PocList::add_poc(const Poc& poc) {
  const auto [it, inserted] = pocs_.emplace(poc.participant, poc);
  if (!inserted && it->second.commitment != poc.commitment) {
    throw ProtocolError("conflicting POCs for participant " +
                        poc.participant);
  }
}

void PocList::add_edge(const std::string& parent, const std::string& child) {
  if (pocs_.find(parent) == pocs_.end() ||
      pocs_.find(child) == pocs_.end()) {
    throw ProtocolError("POC pair references unregistered participant");
  }
  if (parent == child) {
    throw ProtocolError("POC pair cannot be a self loop");
  }
  children_[parent].insert(child);
  parents_[child].insert(parent);
}

const Poc* PocList::find(const std::string& participant) const {
  const auto it = pocs_.find(participant);
  return it == pocs_.end() ? nullptr : &it->second;
}

bool PocList::has_edge(const std::string& parent,
                       const std::string& child) const {
  const auto it = children_.find(parent);
  return it != children_.end() && it->second.count(child) > 0;
}

std::vector<std::string> PocList::children_of(const std::string& parent) const {
  const auto it = children_.find(parent);
  if (it == children_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<std::string> PocList::parents_of(const std::string& child) const {
  const auto it = parents_.find(child);
  if (it == parents_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<std::string> PocList::initial_participants() const {
  std::vector<std::string> out;
  for (const auto& [id, poc] : pocs_) {
    const auto it = parents_.find(id);
    if (it == parents_.end() || it->second.empty()) out.push_back(id);
  }
  return out;
}

std::vector<std::string> PocList::participants() const {
  std::vector<std::string> out;
  out.reserve(pocs_.size());
  for (const auto& [id, poc] : pocs_) out.push_back(id);
  return out;
}

std::size_t PocList::edge_count() const {
  std::size_t n = 0;
  for (const auto& [parent, kids] : children_) n += kids.size();
  return n;
}

Bytes PocList::serialize() const {
  BinaryWriter w;
  w.bytes(ps_);
  w.varint(pocs_.size());
  for (const auto& [id, poc] : pocs_) w.bytes(poc.serialize());
  w.varint(edge_count());
  for (const auto& [parent, kids] : children_) {
    for (const auto& child : kids) {
      w.str(parent);
      w.str(child);
    }
  }
  return w.take();
}

PocList PocList::deserialize(BytesView data) {
  BinaryReader r(data);
  PocList list(r.bytes());
  const std::uint64_t n_pocs = r.varint();
  for (std::uint64_t i = 0; i < n_pocs; ++i) {
    list.add_poc(Poc::deserialize(r.bytes()));
  }
  const std::uint64_t n_edges = r.varint();
  for (std::uint64_t i = 0; i < n_edges; ++i) {
    const std::string parent = r.str();
    const std::string child = r.str();
    list.add_edge(parent, child);
  }
  r.expect_done();
  return list;
}

}  // namespace desword::poc
