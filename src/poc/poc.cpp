#include "poc/poc.h"

#include "common/error.h"
#include "common/serial.h"

namespace desword::poc {

zkedb::EdbCrsPtr ps_gen(const zkedb::EdbConfig& config) {
  return zkedb::generate_crs(config);
}

Bytes Poc::serialize() const {
  BinaryWriter w;
  w.str(participant);
  w.bytes(commitment);
  return w.take();
}

Poc Poc::deserialize(BytesView data) {
  BinaryReader r(data);
  Poc poc{r.str(), r.bytes()};
  r.expect_done();
  if (poc.participant.empty()) {
    throw SerializationError("POC participant id empty");
  }
  return poc;
}

mercurial::QtmcCommitment Poc::parsed_commitment(
    const zkedb::EdbCrs& crs) const {
  return mercurial::QtmcCommitment::deserialize(crs.params().qtmc_pk.n,
                                                commitment);
}

PocDecommitment::PocDecommitment(zkedb::EdbCrsPtr crs,
                                 std::unique_ptr<zkedb::EdbProver> prover,
                                 std::map<Bytes, Bytes> traces)
    : crs_(std::move(crs)),
      prover_(std::move(prover)),
      traces_(std::move(traces)) {}

bool PocDecommitment::owns(BytesView product_id) const {
  return traces_.find(Bytes(product_id.begin(), product_id.end())) !=
         traces_.end();
}

Bytes PocDecommitment::serialize() const {
  BinaryWriter w;
  w.varint(traces_.size());
  for (const auto& [id, da] : traces_) {
    w.bytes(id);
    w.bytes(da);
  }
  w.bytes(prover_->serialize_state());
  return w.take();
}

std::unique_ptr<PocDecommitment> PocDecommitment::load(zkedb::EdbCrsPtr crs,
                                                       BytesView data) {
  BinaryReader r(data);
  std::map<Bytes, Bytes> traces;
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    Bytes id = r.bytes();
    Bytes da = r.bytes();
    traces.emplace(std::move(id), std::move(da));
  }
  const Bytes state = r.bytes();
  r.expect_done();
  auto prover = std::make_unique<zkedb::EdbProver>(
      zkedb::EdbProver::load(crs, state));
  return std::make_unique<PocDecommitment>(std::move(crs), std::move(prover),
                                           std::move(traces));
}

Bytes PocProof::serialize() const {
  BinaryWriter w;
  w.boolean(ownership);
  w.bytes(zk_proof);
  return w.take();
}

PocProof PocProof::deserialize(BytesView data) {
  BinaryReader r(data);
  PocProof p;
  p.ownership = r.boolean();
  p.zk_proof = r.bytes();
  r.expect_done();
  return p;
}

PocScheme::PocScheme(zkedb::EdbCrsPtr crs, zkedb::EdbVerifyOptions verify_opts)
    : crs_(std::move(crs)), verify_opts_(verify_opts) {}

std::pair<Poc, std::unique_ptr<PocDecommitment>> PocScheme::aggregate(
    const std::string& participant, const std::map<Bytes, Bytes>& traces,
    const zkedb::EdbProverOptions& options) const {
  if (participant.empty()) {
    throw ProtocolError("POC-Agg: participant id must be non-empty");
  }
  std::map<Bytes, Bytes> entries;
  for (const auto& [id, da] : traces) {
    const zkedb::EdbKey key = zkedb::key_for_identifier(*crs_, id);
    if (!entries.emplace(key, da).second) {
      throw ProtocolError("POC-Agg: product id key collision");
    }
  }
  auto prover = std::make_unique<zkedb::EdbProver>(crs_, entries, options);
  Poc poc{participant, prover->commitment_bytes()};
  auto dpoc =
      std::make_unique<PocDecommitment>(crs_, std::move(prover), traces);
  return {std::move(poc), std::move(dpoc)};
}

PocProof PocScheme::prove(PocDecommitment& dpoc, BytesView product_id) const {
  const zkedb::EdbKey key = zkedb::key_for_identifier(*crs_, product_id);
  PocProof proof;
  if (dpoc.owns(product_id)) {
    proof.ownership = true;
    proof.zk_proof = dpoc.prover().prove_membership(key).serialize(*crs_);
  } else {
    proof.ownership = false;
    proof.zk_proof = dpoc.prover().prove_non_membership(key).serialize(*crs_);
  }
  return proof;
}

PocVerifyResult PocScheme::verify(const Poc& poc, BytesView product_id,
                                  const PocProof& proof) const {
  try {
    const zkedb::EdbKey key = zkedb::key_for_identifier(*crs_, product_id);
    const mercurial::QtmcCommitment root = poc.parsed_commitment(*crs_);
    if (proof.ownership) {
      const auto zk =
          zkedb::EdbMembershipProof::deserialize(*crs_, proof.zk_proof);
      const auto value =
          zkedb::edb_verify_membership(*crs_, root, key, zk, verify_opts_);
      if (!value.has_value()) return {PocVerdict::kBad, std::nullopt};
      return {PocVerdict::kTrace, *value};
    }
    const auto zk =
        zkedb::EdbNonMembershipProof::deserialize(*crs_, proof.zk_proof);
    if (!zkedb::edb_verify_non_membership(*crs_, root, key, zk,
                                          verify_opts_)) {
      return {PocVerdict::kBad, std::nullopt};
    }
    return {PocVerdict::kValid, std::nullopt};
  } catch (const Error&) {
    return {PocVerdict::kBad, std::nullopt};
  }
}

}  // namespace desword::poc
