// Product Ownership Credential (POC) scheme — the paper's Table I.
//
//   PS-Gen(λ)      -> ps                (here: the ZK-EDB CRS)
//   POC-Agg        -> (POC_v, DPOC_v)   commit a participant's RFID-traces
//   POC-Proof      -> oπ / noπ          ownership / non-ownership proof
//   POC-Verify     -> t / valid / bad
//
// A POC is `v || Com`: the participant identity plus the compact ZK-EDB
// commitment of its trace database. DPOC is the decommitment state the
// participant keeps to answer queries.
//
// Product identifiers are arbitrary byte strings; they are mapped into the
// ZK-EDB key space by hashing (key_for_identifier). The committed value for
// a product id is the information part `da` of its RFID-trace; POC-Verify
// reconstitutes the full trace t = (id, da).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "zkedb/prover.h"
#include "zkedb/verifier.h"

namespace desword::poc {

/// PS-Gen: generate the public parameter ps (ZK-EDB CRS).
zkedb::EdbCrsPtr ps_gen(const zkedb::EdbConfig& config);

/// A participant's product ownership credential (public).
struct Poc {
  std::string participant;  // v_i
  Bytes commitment;         // serialized ZK-EDB root commitment

  bool operator==(const Poc&) const = default;
  Bytes serialize() const;
  static Poc deserialize(BytesView data);

  /// Parses the embedded commitment. Throws SerializationError if invalid.
  mercurial::QtmcCommitment parsed_commitment(const zkedb::EdbCrs& crs) const;
};

/// DPOC: the private decommitment state (wraps the ZK-EDB prover tree).
class PocDecommitment {
 public:
  PocDecommitment(zkedb::EdbCrsPtr crs, std::unique_ptr<zkedb::EdbProver> prover,
                  std::map<Bytes, Bytes> traces);

  bool owns(BytesView product_id) const;
  std::size_t trace_count() const { return traces_.size(); }
  zkedb::EdbProver& prover() { return *prover_; }
  const std::map<Bytes, Bytes>& traces() const { return traces_; }
  const zkedb::EdbCrs& crs() const { return *crs_; }

  /// Durable form of the DPOC: participants persist this between the
  /// distribution phase and (possibly much later) queries.
  Bytes serialize() const;
  static std::unique_ptr<PocDecommitment> load(zkedb::EdbCrsPtr crs,
                                               BytesView data);

 private:
  zkedb::EdbCrsPtr crs_;
  std::unique_ptr<zkedb::EdbProver> prover_;
  std::map<Bytes, Bytes> traces_;  // product id -> da (trace info)
};

/// Ownership or non-ownership proof ("Ow-proof || ZK-π" / "Now-proof || ZK-π").
struct PocProof {
  bool ownership = false;
  Bytes zk_proof;  // serialized EdbMembershipProof or EdbNonMembershipProof

  Bytes serialize() const;
  static PocProof deserialize(BytesView data);
};

/// Result of POC-Verify.
enum class PocVerdict : std::uint8_t {
  kTrace,  // ownership proof valid; `trace_info` holds da with t = (id, da)
  kValid,  // non-ownership proof valid
  kBad,    // proof invalid
};

struct PocVerifyResult {
  PocVerdict verdict = PocVerdict::kBad;
  std::optional<Bytes> trace_info;  // set iff verdict == kTrace
};

class PocScheme {
 public:
  /// `verify_opts` picks the ZK-proof verification strategy (batched
  /// multi-exponentiation by default); it never changes verdicts.
  explicit PocScheme(zkedb::EdbCrsPtr crs,
                     zkedb::EdbVerifyOptions verify_opts = {});

  const zkedb::EdbCrs& crs() const { return *crs_; }
  const zkedb::EdbVerifyOptions& verify_options() const {
    return verify_opts_;
  }

  /// POC-Agg: commits `traces` (product id -> da) for `participant`.
  /// `options` tunes the underlying EDB-commit (thread count, seeded
  /// randomness for reproducible commitments).
  std::pair<Poc, std::unique_ptr<PocDecommitment>> aggregate(
      const std::string& participant, const std::map<Bytes, Bytes>& traces,
      const zkedb::EdbProverOptions& options = {}) const;

  /// POC-Proof: ownership proof if the participant holds a trace for
  /// `product_id`, otherwise a non-ownership proof.
  PocProof prove(PocDecommitment& dpoc, BytesView product_id) const;

  /// POC-Verify.
  PocVerifyResult verify(const Poc& poc, BytesView product_id,
                         const PocProof& proof) const;

 private:
  zkedb::EdbCrsPtr crs_;
  zkedb::EdbVerifyOptions verify_opts_;
};

}  // namespace desword::poc
